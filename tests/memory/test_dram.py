"""Unit tests for the banked DRAM timing model."""

import pytest

from repro.config import DRAMConfig
from repro.memory import DRAMModel


def make_dram(**overrides) -> DRAMModel:
    cfg = DRAMConfig(**overrides)
    return DRAMModel(cfg, core_freq_ghz=3.2)


def test_timing_conversion():
    cfg = DRAMConfig()
    # 16 memory cycles at 1200MHz == 42.67 core cycles at 3.2GHz, round up.
    assert cfg.core_cycles(16, 3.2) == 43


def test_row_hit_faster_than_row_conflict():
    d = make_dram()
    first = d.access(0, 0)                   # cold: row miss
    # Same bank, same row: next line in the same row of the same bank.
    same_row_line = d.config.channels * d.banks_per_channel
    # find a line mapping to same (channel, bank, row)
    ch0, b0, r0 = d.map_address(0)
    candidate = None
    for line in range(1, 100_000):
        if d.map_address(line) == (ch0, b0, r0):
            candidate = line
            break
    assert candidate is not None
    second = d.access(first, candidate)      # row hit
    hit_latency = second - first
    # Now a different row, same bank -> conflict.
    conflict = None
    for line in range(1, 1_000_000):
        ch, bank, row = d.map_address(line)
        if (ch, bank) == (ch0, b0) and row != r0:
            conflict = line
            break
    third = d.access(second, conflict)
    conflict_latency = third - second
    assert hit_latency < conflict_latency
    assert d.row_hits >= 1 and d.row_conflicts >= 1


def test_bank_parallelism_beats_serialisation():
    d1 = make_dram()
    # Four requests to different banks at cycle 0 complete much earlier
    # than four to the same bank.
    parallel_done = max(d1.access(0, line) for line in range(4))

    d2 = make_dram()
    ch0, b0, r0 = d2.map_address(0)
    same_bank_lines = [0]
    for line in range(1, 10_000_000):
        ch, bank, row = d2.map_address(line)
        if (ch, bank) == (ch0, b0) and row != d2.map_address(same_bank_lines[-1])[2]:
            same_bank_lines.append(line)
            if len(same_bank_lines) == 4:
                break
    serial_done = 0
    for line in same_bank_lines:
        serial_done = max(serial_done, d2.access(0, line))
    assert parallel_done < serial_done


def test_channel_interleaving():
    d = make_dram(channels=2)
    assert d.map_address(0)[0] == 0
    assert d.map_address(1)[0] == 1
    assert d.map_address(2)[0] == 0


def test_traffic_attribution():
    d = make_dram()
    d.access(0, 0, source="demand")
    d.access(0, 1, source="prefetch")
    d.access(0, 2, source="runahead")
    d.access(0, 3, source="writeback", is_write=True)
    assert d.reads["demand"] == 1
    assert d.reads["prefetch"] == 1
    assert d.reads["runahead"] == 1
    assert d.writes["writeback"] == 1
    assert d.total_traffic == 4
    assert d.traffic_bytes() == 4 * 64


def test_unknown_source_rejected():
    d = make_dram()
    with pytest.raises(ValueError):
        d.access(0, 0, source="mystery")


def test_completion_monotone_per_bank():
    d = make_dram()
    t1 = d.access(0, 0)
    t2 = d.access(0, 0)  # same line again, bank busy until t1
    assert t2 > t1


def test_reset_stats():
    d = make_dram()
    d.access(0, 0)
    d.reset_stats()
    assert d.total_traffic == 0
    assert d.row_hits == d.row_misses == d.row_conflicts == 0
