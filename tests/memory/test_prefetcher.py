"""Unit tests for the stream prefetcher with feedback throttling."""

from repro.config import PrefetcherConfig
from repro.memory import StreamPrefetcher


def make_pf(**overrides) -> StreamPrefetcher:
    cfg = PrefetcherConfig(**overrides)
    return StreamPrefetcher(cfg)


def test_disabled_prefetcher_is_silent():
    pf = make_pf(enabled=False)
    for line in range(10):
        assert pf.on_access(line, was_miss=True) == []


def test_stream_trains_after_consistent_misses():
    pf = make_pf()
    assert pf.on_access(100, True) == []     # allocate
    assert pf.on_access(101, True) == []     # direction observed
    issued = pf.on_access(102, True)         # trained, issues
    assert issued, "trained stream should issue prefetches"
    assert all(line > 102 for line in issued)
    assert pf.trainings == 1


def test_descending_stream_trains_too():
    pf = make_pf()
    pf.on_access(500, True)
    pf.on_access(499, True)
    issued = pf.on_access(498, True)
    assert issued
    assert all(line < 498 for line in issued)


def test_degree_controls_issue_count():
    pf = make_pf(initial_degree=3)
    pf.on_access(10, True)
    pf.on_access(11, True)
    issued = pf.on_access(12, True)
    assert len(issued) == 3


def test_prefetches_do_not_repeat():
    pf = make_pf(initial_degree=2)
    pf.on_access(10, True)
    pf.on_access(11, True)
    first = pf.on_access(12, True)
    second = pf.on_access(13, True)
    assert not set(first) & set(second)


def test_max_distance_bound():
    pf = make_pf(initial_degree=4, max_distance=3)
    pf.on_access(10, True)
    pf.on_access(11, True)
    issued = []
    for line in range(12, 15):
        issued.extend(pf.on_access(line, True))
    for line, pfs in zip(range(12, 15), [issued]):
        pass
    assert all(p <= 14 + 3 for p in issued)


def test_random_misses_do_not_train():
    pf = make_pf()
    import random
    rng = random.Random(1)
    issued = []
    for _ in range(50):
        issued.extend(pf.on_access(rng.randrange(1_000_000), True))
    # Random far-apart addresses allocate streams but should rarely train.
    assert len(issued) <= 4


def test_feedback_throttles_down_on_useless_prefetches():
    pf = make_pf(initial_degree=2, feedback_interval=16,
                 low_accuracy=0.5, min_degree=1)
    line = 0
    pf.on_access(line, True)
    pf.on_access(line + 1, True)
    # Issue many prefetches, never report any useful.
    for i in range(2, 40):
        pf.on_access(line + i, True)
    assert pf.degree == 1
    assert pf.degree_decreases >= 1


def test_feedback_throttles_up_on_accurate_prefetches():
    pf = make_pf(initial_degree=2, feedback_interval=16,
                 high_accuracy=0.5, max_degree=4)
    pf.on_access(0, True)
    pf.on_access(1, True)
    for i in range(2, 40):
        for _ in pf.on_access(i, True):
            pf.on_useful_prefetch()
    assert pf.degree > 2
    assert pf.degree_increases >= 1


def test_accuracy_property():
    pf = make_pf()
    pf.on_access(0, True)
    pf.on_access(1, True)
    issued = pf.on_access(2, True)
    assert pf.accuracy == 0.0
    pf.on_useful_prefetch()
    assert 0 < pf.accuracy <= 1.0
