"""Unit tests for the MSHR file."""

import pytest

from repro.memory import MSHRFile


def test_capacity_validation():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_allocate_lookup_merge():
    m = MSHRFile(4)
    m.allocate(0x10, completes_at=100)
    assert m.lookup(0x10) == 100
    assert m.merge(0x10) == 100
    assert m.merges == 1
    assert m.lookup(0x20) is None


def test_duplicate_allocation_rejected():
    m = MSHRFile(4)
    m.allocate(0x10, 100)
    with pytest.raises(ValueError):
        m.allocate(0x10, 200)


def test_capacity_enforced():
    m = MSHRFile(2)
    m.allocate(1, 10)
    m.allocate(2, 10)
    assert not m.can_allocate()
    with pytest.raises(RuntimeError):
        m.allocate(3, 10)


def test_expire_frees_entries():
    m = MSHRFile(2)
    m.allocate(1, 10)
    m.allocate(2, 20)
    m.expire(10)
    assert m.lookup(1) is None
    assert m.lookup(2) == 20
    assert m.can_allocate()
    assert len(m) == 1


def test_expire_on_empty_is_noop():
    m = MSHRFile(2)
    m.expire(1000)
    assert len(m) == 0
