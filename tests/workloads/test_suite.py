"""Unit tests for the workload suite: every kernel builds, runs, halts,
and exhibits the memory/branch personality its paper role requires."""

import pytest

from repro.isa import execute, trace_summary
from repro.workloads import (
    BRANCH_SENSITIVE,
    NEUTRAL,
    PRE_FAVOURABLE,
    SUITE,
    get_workload,
    suite_names,
)

SMALL = 0.1


def test_suite_matches_papers_benchmark_set():
    expected = {
        "astar", "mcf", "soplex", "milc", "bzip", "nab", "lbm",
        "libquantum", "cactuBSSN", "omnetpp", "zeusmp", "GemsFDTD",
        "fotonik3d", "roms", "leslie3d", "sphinx", "wrf", "parest",
    }
    assert set(suite_names()) == expected


def test_families_are_subsets_of_the_suite():
    names = set(suite_names())
    for family in (BRANCH_SENSITIVE, PRE_FAVOURABLE, NEUTRAL):
        assert set(family) <= names


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_workload("gcc")


@pytest.mark.parametrize("name", suite_names())
def test_every_kernel_builds_and_traces(name):
    workload = get_workload(name, scale=SMALL)
    trace = workload.trace()
    assert len(trace) > 200, f"{name} trace too short"
    assert workload.name == name
    assert 0.0 < workload.warmup_fraction < 1.0
    assert workload.warmup_uops() < len(trace)


@pytest.mark.parametrize("name", suite_names())
def test_traces_are_cached(name):
    workload = get_workload(name, scale=SMALL)
    assert workload.trace() is workload.trace()


@pytest.mark.parametrize("name", suite_names())
def test_scale_stretches_iteration_counts(name):
    small = get_workload(name, scale=SMALL)
    big = get_workload(name, scale=2 * SMALL)
    assert len(big.trace()) > len(small.trace()) * 1.4


@pytest.mark.parametrize("name", suite_names())
def test_deterministic_for_fixed_seed(name):
    a = get_workload(name, scale=SMALL, seed=7)
    b = get_workload(name, scale=SMALL, seed=7)
    ta, tb = a.trace(), b.trace()
    assert len(ta) == len(tb)
    assert all(x.pc == y.pc and x.mem_addr == y.mem_addr
               for x, y in zip(ta[:500], tb[:500]))


def test_seed_changes_data_dependent_behaviour():
    a = get_workload("astar", scale=SMALL, seed=1)
    b = get_workload("astar", scale=SMALL, seed=2)
    addrs_a = [u.mem_addr for u in a.trace() if u.is_load][:200]
    addrs_b = [u.mem_addr for u in b.trace() if u.is_load][:200]
    assert addrs_a != addrs_b


@pytest.mark.parametrize("name", suite_names())
def test_kernels_contain_memory_operations(name):
    summary = trace_summary(get_workload(name, scale=SMALL).trace())
    assert summary["loads"] > 0


def test_branch_sensitive_kernels_have_hard_branches():
    """The family the paper credits to critical-branch marking must have
    data-dependent conditional branches with mixed outcomes."""
    for name in BRANCH_SENSITIVE:
        trace = get_workload(name, scale=0.2).trace()
        outcome_mix = {}
        for uop in trace:
            if uop.is_cond_branch:
                taken, total = outcome_mix.get(uop.pc, (0, 0))
                outcome_mix[uop.pc] = (taken + uop.taken, total + 1)
        hard = [pc for pc, (taken, total) in outcome_mix.items()
                if total >= 50 and 0.05 < taken / total < 0.95]
        assert hard, f"{name} should contain a hard branch"


def test_stencil_kernels_defeat_the_stream_prefetcher():
    """PRE_FAVOURABLE kernels stride across prefetcher regions."""
    for name in PRE_FAVOURABLE:
        trace = get_workload(name, scale=SMALL).trace()
        # Loads alternate across streams; group by 64MB stream region and
        # look at the within-stream stride.
        per_stream = {}
        for uop in trace:
            if uop.is_load:
                per_stream.setdefault(uop.mem_addr >> 26, []).append(
                    uop.mem_addr // 64)
        deltas = set()
        for lines in per_stream.values():
            deltas.update(b - a for a, b in zip(lines, lines[1:])
                          if 0 < b - a < 4096)
        assert deltas, f"{name} should have strided loads"
        assert min(deltas) >= 65, (
            f"{name} stride {min(deltas)} lines would train the prefetcher")


def test_nab_misses_are_distant_and_dependent():
    trace = get_workload("nab", scale=0.3).trace()
    pointer_loads = [u for u in trace if u.is_load]
    # One pointer load per iteration, ~600 uops apart.
    gaps = [b.seq - a.seq for a, b in zip(pointer_loads, pointer_loads[1:])]
    assert min(gaps) > 400
    # Serially dependent: each load's address chain reaches the previous.
    second = pointer_loads[2]
    frontier = set(second.src_deps)
    reached = False
    for _ in range(40):
        new = set()
        for seq in frontier:
            if seq == pointer_loads[1].seq:
                reached = True
            new.update(trace[seq].src_deps)
        frontier = new
        if reached or not frontier:
            break
    assert reached, "nab loads should form a dependent chain"


def test_lbm_is_prefetchable_streaming():
    trace = get_workload("lbm", scale=SMALL).trace()
    lines = [u.mem_addr // 64 for u in trace if u.is_load]
    per_region = {}
    for line in lines:
        per_region.setdefault(line // 4096, []).append(line)
    # Within each stream region, accesses are monotonically nondecreasing.
    monotone = sum(1 for ls in per_region.values()
                   if ls == sorted(ls) and len(ls) > 10)
    assert monotone >= 3
