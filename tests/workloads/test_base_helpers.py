"""Unit tests for the workload-construction helpers."""

import pytest

from repro.isa import ProgramBuilder, execute
from repro.workloads import (
    build_pointer_ring,
    emit_filler,
    fill_bits,
    fill_random_words,
    make_rng,
)
from repro.workloads.base import Workload, scaled


def test_fill_random_words_range_and_count():
    memory = {}
    fill_random_words(memory, 1000, 64, 50, make_rng(1))
    assert len(memory) == 64
    assert all(0 <= v < 50 for v in memory.values())
    assert set(memory) == {1000 + i * 8 for i in range(64)}


def test_fill_bits_bias():
    memory = {}
    fill_bits(memory, 0, 4000, 0.25, make_rng(2))
    ones = sum(memory.values())
    assert 0.18 < ones / 4000 < 0.32
    assert set(memory.values()) <= {0, 1}


def test_pointer_ring_is_a_single_cycle():
    memory = {}
    head = build_pointer_ring(memory, 1 << 20, nodes=64, node_bytes=64,
                              rng=make_rng(3))
    seen = set()
    node = head
    for _ in range(64):
        assert node not in seen
        seen.add(node)
        node = memory[node]
    assert node == head              # closes after exactly `nodes` hops
    assert len(seen) == 64
    # Payload words exist alongside the links.
    assert all((addr + 8) in memory for addr in seen)


def test_emit_filler_has_no_loop_carried_dependences():
    b = ProgramBuilder()
    b.movi(1, 50)
    b.label("loop")
    emit_filler(b, 12, fp=True)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    trace = execute(b.build())
    # No filler uop may depend on a uop from a previous iteration
    # (other than the loop counter, regs >= 20 restart from movi).
    body = 12 + 2
    for uop in trace:
        if uop.dst is not None and uop.dst >= 20:
            for dep in uop.src_deps:
                assert uop.seq - dep < body, "loop-carried filler chain"


def test_scaled_floors():
    assert scaled(100, 1.0) == 100
    assert scaled(100, 0.25) == 25
    assert scaled(100, 0.0001, minimum=8) == 8


def test_workload_warmup_uops():
    b = ProgramBuilder()
    b.movi(1, 1)
    b.halt()
    workload = Workload(name="w", program=b.build(), memory={},
                        max_uops=10, warmup_fraction=0.5)
    assert workload.warmup_uops() == len(workload.trace()) // 2
