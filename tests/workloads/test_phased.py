"""Unit tests for the multi-phase (SimPoint-study) workloads."""

from repro.workloads.phased import (
    build_phased,
    build_phased_compute_only,
    build_phased_memory_only,
)

SMALL = 0.15


def test_all_three_variants_build_and_halt():
    for builder in (build_phased, build_phased_memory_only,
                    build_phased_compute_only):
        workload = builder(scale=SMALL)
        trace = workload.trace()
        assert len(trace) > 100


def test_whole_program_contains_both_phases():
    whole = build_phased(scale=SMALL).trace()
    memory_only = build_phased_memory_only(scale=SMALL).trace()
    compute_only = build_phased_compute_only(scale=SMALL).trace()
    # The phased program is roughly the concatenation of the two.
    assert len(whole) > len(memory_only)
    assert len(whole) > len(compute_only)
    assert abs(len(whole) - (len(memory_only) + len(compute_only))) < 50


def test_memory_phase_misses_compute_phase_does_not():
    memory_only = build_phased_memory_only(scale=SMALL)
    compute_only = build_phased_compute_only(scale=SMALL)
    big_loads_mem = sum(1 for u in memory_only.trace()
                        if u.is_load and u.mem_addr >= (1 << 26))
    big_loads_cmp = sum(1 for u in compute_only.trace()
                        if u.is_load and u.mem_addr is not None
                        and u.mem_addr >= (1 << 26))
    assert big_loads_mem > 50
    assert big_loads_cmp == 0


def test_phases_are_deterministic():
    a = build_phased(scale=SMALL, seed=3).trace()
    b = build_phased(scale=SMALL, seed=3).trace()
    assert len(a) == len(b)
    assert all(x.mem_addr == y.mem_addr for x, y in zip(a[:300], b[:300]))
