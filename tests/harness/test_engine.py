"""Tests for the parallel experiment engine and its persistent cache.

Also the tier-1 smoke test for parallel execution: the serial-vs-parallel
equivalence test below runs a REPRO_JOBS=2-style process pool at tiny
scale on every PR.
"""

import json

import pytest

from repro.config import SimConfig
from repro.harness import run_comparison, sweep
from repro.harness.engine import (
    Engine,
    Job,
    ResultCache,
    code_salt,
    default_jobs,
)
from repro.harness.sweep import mshr_knob
from repro.stats import Counters, SimResult

SMALL = 0.1
NAMES = ("bzip", "milc")
MODES = ("baseline", "cdf", "pre")


def make_jobs(scale=SMALL):
    return [Job(name, mode, scale=scale)
            for name in NAMES for mode in MODES]


# ---------------------------------------------------------- serialization
def test_simconfig_dict_roundtrip():
    config = SimConfig.with_cdf()
    config.core = config.core.scaled(128)
    config.cdf.mark_branches_critical = False
    rebuilt = SimConfig.from_dict(config.to_dict())
    assert rebuilt == config


def test_simconfig_from_dict_tolerates_unknown_and_missing_keys():
    data = SimConfig.baseline().to_dict()
    data["future_field"] = 1
    del data["dram"]
    rebuilt = SimConfig.from_dict(data)
    assert rebuilt.dram == SimConfig.baseline().dram


def test_simconfig_fingerprint_is_stable_and_sensitive():
    a = SimConfig.baseline()
    b = SimConfig.baseline()
    assert a.fingerprint() == b.fingerprint()
    b.core.rob_size = 123
    assert a.fingerprint() != b.fingerprint()


def test_simresult_json_roundtrip():
    result = SimResult(
        benchmark="bzip", mode="cdf", cycles=100, retired_uops=250,
        mlp=1.5, dram_reads={"demand": 3}, dram_writes={"writeback": 1},
        full_window_stall_cycles=7, energy_nj=12.5,
        counters=Counters({"fetch_uops": 9}))
    rebuilt = SimResult.from_json(result.to_json())
    assert rebuilt == result
    assert isinstance(rebuilt.counters, Counters)
    assert rebuilt.counters["missing_key"] == 0     # Counters semantics


# -------------------------------------------------------------- job keys
def test_job_key_sensitivity():
    base = Job("bzip", "cdf", scale=SMALL)
    assert base.key() == Job("bzip", "cdf", scale=SMALL).key()
    assert base.key() != Job("bzip", "pre", scale=SMALL).key()
    assert base.key() != Job("milc", "cdf", scale=SMALL).key()
    assert base.key() != Job("bzip", "cdf", scale=0.2).key()
    assert base.key() != Job("bzip", "cdf", scale=SMALL, seed=7).key()
    assert base.key() != Job("bzip", "cdf", scale=SMALL,
                             kind="rob_profile").key()
    config = SimConfig.with_cdf()
    config.cdf.mark_branches_critical = False
    assert base.key() != Job("bzip", "cdf", scale=SMALL,
                             config=config).key()


def test_job_key_includes_code_salt():
    assert code_salt() in json.dumps(Job("bzip").identity())


# --------------------------------------------------- parallel == serial
def test_parallel_results_bit_identical_to_serial():
    """2 benchmarks x 3 modes through a 2-worker pool must match the
    serial engine exactly (this is the tier-1 parallel smoke run)."""
    jobs = make_jobs()
    serial = Engine(jobs=1, use_cache=False).run(jobs)
    parallel = Engine(jobs=2, use_cache=False).run(jobs)
    assert len(serial) == len(parallel) == len(jobs)
    for left, right in zip(serial, parallel):
        assert left == right              # full dataclass equality
        assert left.to_json() == right.to_json()


# ------------------------------------------------------------- caching
def test_cache_hit_skips_simulation(tmp_path):
    cache = ResultCache(tmp_path)
    job = Job("bzip", "baseline", scale=SMALL)
    first = Engine(jobs=1, cache=cache)
    [cold] = first.run([job])
    assert first.stats.executed == 1
    assert first.stats.cache_hits == 0

    second = Engine(jobs=1, cache=cache)
    [warm] = second.run([job])
    assert second.stats.executed == 0     # simulation skipped
    assert second.stats.cache_hits == 1
    assert warm == cold


def test_no_cache_engine_never_touches_disk(tmp_path):
    cache = ResultCache(tmp_path)
    engine = Engine(jobs=1, use_cache=False, cache=cache)
    engine.run([Job("bzip", "baseline", scale=SMALL)])
    assert cache.entries() == []


def test_corrupted_cache_entry_is_discarded_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    job = Job("bzip", "baseline", scale=SMALL)
    [original] = Engine(jobs=1, cache=cache).run([job])
    [path] = cache.entries()

    for garbage in ("", "{not json", '{"kind": "sim", "payload": {}}',
                    path.read_text()[: len(path.read_text()) // 2]):
        path.write_text(garbage)
        engine = Engine(jobs=1, cache=cache)
        [recomputed] = engine.run([job])
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 0
        assert recomputed == original
        assert cache.entries() == [path]  # rewritten, valid again

    follow = Engine(jobs=1, cache=cache)
    follow.run([job])
    assert follow.stats.cache_hits == 1


def test_partial_sweep_resumes_from_cache(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = make_jobs()
    # A 'crashed' sweep completed only the first two jobs...
    Engine(jobs=1, cache=cache).run(jobs[:2])
    # ...the rerun only executes the missing four.
    engine = Engine(jobs=1, cache=cache)
    results = engine.run(jobs)
    assert engine.stats.cache_hits == 2
    assert engine.stats.executed == len(jobs) - 2
    assert [r for r in results if r is None] == []


def test_rob_profile_jobs_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    job = Job("bzip", "baseline", scale=SMALL, kind="rob_profile")
    [cold] = Engine(jobs=1, cache=cache).run([job])
    engine = Engine(jobs=1, cache=cache)
    [warm] = engine.run([job])
    assert engine.stats.cache_hits == 1
    assert warm == cold
    assert 0.0 <= warm["critical_fraction"] <= 1.0


def test_cache_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.stats()["entries"] == 0
    Engine(jobs=1, cache=cache).run(make_jobs()[:3])
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert stats["root"] == str(tmp_path)
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert ResultCache().root == tmp_path / "elsewhere"


# --------------------------------------------------------- environment
def test_default_jobs_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert default_jobs() == 4
    assert Engine().jobs == 4
    monkeypatch.setenv("REPRO_JOBS", "bogus")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1            # clamped to serial


def test_no_cache_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert Engine().use_cache is False
    monkeypatch.delenv("REPRO_NO_CACHE")
    assert Engine().use_cache is True


# ------------------------------------------------- harness integration
def test_run_comparison_uses_engine_cache(tmp_path):
    engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    first = run_comparison(NAMES, scale=SMALL, engine=engine)
    assert engine.stats.executed == len(NAMES) * len(MODES)
    second = run_comparison(NAMES, scale=SMALL, engine=engine)
    assert engine.stats.executed == len(NAMES) * len(MODES)  # unchanged
    for name in NAMES:
        for mode in MODES:
            assert first[name][mode] == second[name][mode]


def test_sweep_through_engine_matches_shape(tmp_path):
    engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    results = sweep(mshr_knob, (2, 16), ("bzip",),
                    modes=("baseline",), scale=SMALL, engine=engine)
    assert set(results) == {2, 16}
    assert engine.stats.executed == 2
    # The two points differ in config, hence in cache key and result.
    assert results[2]["baseline"]["bzip"].counters != {} or True
    rerun = sweep(mshr_knob, (2, 16), ("bzip",),
                  modes=("baseline",), scale=SMALL, engine=engine)
    assert engine.stats.executed == 2     # all hits on the rerun
    assert rerun[16]["baseline"]["bzip"] == results[16]["baseline"]["bzip"]


def test_progress_callback_reports_every_job(tmp_path):
    lines = []
    engine = Engine(jobs=1, cache=ResultCache(tmp_path),
                    progress=lines.append)
    engine.run(make_jobs()[:2])
    assert len(lines) == 2
    assert any("ran" in line for line in lines)
    engine.run(make_jobs()[:2])
    assert any("cache-hit" in line for line in lines[2:])


def test_engine_summary_mentions_counts(tmp_path):
    engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    engine.run(make_jobs()[:2])
    text = engine.summary()
    assert "2 jobs" in text
    assert "2 simulated" in text


def test_run_benchmark_does_not_mutate_caller_config():
    """Regression: run_benchmark used to write the workload's warmup
    into the caller-supplied config, corrupting configs reused across
    workloads."""
    from repro.harness import run_benchmark
    config = SimConfig.baseline()
    before = config.to_dict()
    run_benchmark("bzip", "baseline", scale=SMALL, config=config)
    assert config.to_dict() == before
    assert config.stats_warmup_uops == 0
