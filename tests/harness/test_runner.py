"""Unit tests for the experiment runner."""

import pytest

from repro.config import SimConfig
from repro.harness import (
    config_for_mode,
    geomean,
    load_workload,
    make_pipeline,
    run_benchmark,
    run_comparison,
    speedups,
)
from repro.cdf import CDFPipeline
from repro.core import BaselinePipeline
from repro.runahead import PREPipeline

SMALL = 0.1


def test_config_for_mode():
    assert config_for_mode("baseline").mode() == "baseline"
    assert config_for_mode("cdf").mode() == "cdf"
    assert config_for_mode("pre").mode() == "pre"
    with pytest.raises(ValueError):
        config_for_mode("runahead")


def test_make_pipeline_types():
    workload = load_workload("bzip", SMALL)
    trace = workload.trace()
    assert isinstance(
        make_pipeline("baseline", trace, config_for_mode("baseline"),
                      workload), BaselinePipeline)
    assert isinstance(
        make_pipeline("cdf", trace, config_for_mode("cdf"), workload),
        CDFPipeline)
    assert isinstance(
        make_pipeline("pre", trace, config_for_mode("pre"), workload),
        PREPipeline)
    with pytest.raises(ValueError):
        make_pipeline("x", trace, config_for_mode("baseline"), workload)


def test_workload_cache_shares_traces():
    a = load_workload("bzip", SMALL)
    b = load_workload("bzip", SMALL)
    assert a is b
    c = load_workload("bzip", SMALL, seed=99)
    assert c is not a


def test_run_benchmark_applies_warmup_and_energy():
    result = run_benchmark("bzip", "baseline", scale=SMALL)
    workload = load_workload("bzip", SMALL)
    assert result.retired_uops < len(workload.trace())
    assert result.energy_nj > 0
    assert result.benchmark == "bzip"
    assert result.mode == "baseline"


def test_run_benchmark_with_custom_config():
    config = SimConfig.baseline()
    config.core = config.core.scaled(64)
    small_rob = run_benchmark("bzip", "baseline", scale=SMALL,
                              config=config)
    default = run_benchmark("bzip", "baseline", scale=SMALL)
    assert small_rob.cycles >= default.cycles


def test_run_comparison_and_speedups():
    results = run_comparison(["bzip"], scale=SMALL)
    assert set(results["bzip"]) == {"baseline", "cdf", "pre"}
    ratio = speedups(results, "cdf")["bzip"]
    assert ratio > 0


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([2.0, 0.0, -1.0]) == pytest.approx(2.0)  # ignores <= 0


def test_workload_cache_capacity_env(monkeypatch):
    from repro.harness import runner

    monkeypatch.delenv(runner.WORKLOAD_CACHE_ENV, raising=False)
    assert runner.workload_cache_capacity() == \
        runner.DEFAULT_WORKLOAD_CACHE
    monkeypatch.setenv(runner.WORKLOAD_CACHE_ENV, "3")
    assert runner.workload_cache_capacity() == 3
    monkeypatch.setenv(runner.WORKLOAD_CACHE_ENV, "0")
    assert runner.workload_cache_capacity() == 1    # clamped


def test_workload_cache_bad_env_warns_once(monkeypatch):
    import warnings

    from repro.harness import runner

    monkeypatch.setenv(runner.WORKLOAD_CACHE_ENV, "plenty")
    monkeypatch.setattr(runner, "_warned_bad_workload_cache", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert runner.workload_cache_capacity() == \
            runner.DEFAULT_WORKLOAD_CACHE
        # The fallback repeats, the warning does not.
        assert runner.workload_cache_capacity() == \
            runner.DEFAULT_WORKLOAD_CACHE
    assert len(caught) == 1
    assert "plenty" in str(caught[0].message)
    assert issubclass(caught[0].category, RuntimeWarning)
