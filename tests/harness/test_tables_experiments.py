"""Unit tests for table rendering and (small-scale) experiment drivers."""

import pytest

from repro.harness import (
    fig01_rob_distribution,
    fig13_speedup,
    fig14_mlp,
    fig15_traffic,
    fig16_energy,
    format_fig01,
    format_fig13,
    get_comparison,
    percent,
    render_table,
    table1_text,
)

SMALL = 0.12
SUBSET = ("bzip", "milc")


def test_render_table_alignment_and_footer():
    text = render_table("T", ("name", "v"), [("a", 1), ("bb", 22)],
                        footer=("sum", 23))
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2]
    assert any("bb" in line for line in lines)
    assert "sum" in lines[-2]


def test_percent_formatting():
    assert percent(1.061) == "+6.1%"
    assert percent(0.95) == "-5.0%"


def test_table1_mentions_all_structures():
    text = table1_text()
    for token in ("352 Entry ROB", "TAGE", "DDR4_2400R", "Mask Cache",
                  "Critical Uop Cache", "Fill Buffer",
                  "Delayed Branch Queue", "Critical Map Queue"):
        assert token in text, token


def test_comparison_cache_is_shared():
    a = get_comparison(SUBSET, SMALL)
    b = get_comparison(SUBSET, SMALL)
    assert a is b


def test_fig13_structure():
    data = fig13_speedup(names=SUBSET, scale=SMALL)
    assert set(data["cdf"]) == set(SUBSET)
    assert data["geomean"]["cdf"] > 0
    text = format_fig13(data)
    assert "GEOMEAN" in text and "bzip" in text


def test_fig14_15_16_share_runs_and_have_all_rows():
    for driver in (fig14_mlp, fig15_traffic, fig16_energy):
        data = driver(names=SUBSET, scale=SMALL)
        assert set(data["cdf"]) == set(SUBSET)
        assert set(data["pre"]) == set(SUBSET)
        assert "geomean" in data


def test_fig01_fractions_in_unit_interval():
    fractions = fig01_rob_distribution(names=SUBSET, scale=SMALL)
    for name, value in fractions.items():
        assert 0.0 <= value <= 1.0, name
    text = format_fig01(fractions)
    assert "critical" in text
