"""Unit tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_shows_all_benchmarks(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("astar", "mcf", "zeusmp", "parest"):
        assert name in out


def test_run_baseline(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                        "--scale", "0.1")
    assert code == 0
    assert "bzip" in out and "ipc=" in out


def test_run_cdf_reports_cdf_counters(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "cdf",
                        "--scale", "0.3")
    assert code == 0
    assert "cdf:" in out and "critical fetches" in out


def test_run_pre_reports_runahead_counters(capsys):
    code, out = run_cli(capsys, "run", "milc", "--mode", "pre",
                        "--scale", "0.15")
    assert code == 0
    assert "pre:" in out and "intervals" in out


def test_run_with_rob_override(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                        "--scale", "0.1", "--rob", "64")
    assert code == 0


def test_run_counters_dump(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                        "--scale", "0.1", "--counters")
    assert "fetch_uops" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "bzip", "--scale", "0.1")
    assert code == 0
    for mode in ("baseline", "cdf", "pre"):
        assert mode in out


def test_figure_table1(capsys):
    code, out = run_cli(capsys, "figure", "table1")
    assert code == 0
    assert "352 Entry ROB" in out


def test_figure_fig13_small(capsys):
    code, out = run_cli(capsys, "figure", "fig13", "--scale", "0.08")
    assert code == 0
    assert "GEOMEAN" in out


def test_disasm(capsys):
    code, out = run_cli(capsys, "disasm", "nab")
    assert code == 0
    assert "load r8, [r7]" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "gcc"])


def test_all_figures_registered():
    assert set(FIGURES) == {
        "table1", "fig1", "fig13", "fig14", "fig15", "fig16", "fig17",
        "ablation-branches", "ablation-partitioning",
        "ablation-thresholds",
    }
