"""Unit tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_shows_all_benchmarks(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("astar", "mcf", "zeusmp", "parest"):
        assert name in out


def test_run_baseline(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                        "--scale", "0.1")
    assert code == 0
    assert "bzip" in out and "ipc=" in out


def test_run_cdf_reports_cdf_counters(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "cdf",
                        "--scale", "0.3")
    assert code == 0
    assert "cdf:" in out and "critical fetches" in out


def test_run_pre_reports_runahead_counters(capsys):
    code, out = run_cli(capsys, "run", "milc", "--mode", "pre",
                        "--scale", "0.15")
    assert code == 0
    assert "pre:" in out and "intervals" in out


def test_run_with_rob_override(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                        "--scale", "0.1", "--rob", "64")
    assert code == 0


def test_run_counters_dump(capsys):
    code, out = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                        "--scale", "0.1", "--counters")
    assert "fetch_uops" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "bzip", "--scale", "0.1")
    assert code == 0
    for mode in ("baseline", "cdf", "pre"):
        assert mode in out


def test_figure_table1(capsys):
    code, out = run_cli(capsys, "figure", "table1")
    assert code == 0
    assert "352 Entry ROB" in out


def test_figure_fig13_small(capsys):
    code, out = run_cli(capsys, "figure", "fig13", "--scale", "0.08")
    assert code == 0
    assert "GEOMEAN" in out


def test_disasm(capsys):
    code, out = run_cli(capsys, "disasm", "nab")
    assert code == 0
    assert "load r8, [r7]" in out


def test_cache_stats_and_clear_subcommand(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code, out = run_cli(capsys, "cache", "stats")
    assert code == 0
    assert str(tmp_path) in out
    assert "0" in out

    # Populate the cache via a run, then verify stats and clear see it.
    code, _ = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                      "--scale", "0.1")
    assert code == 0
    code, out = run_cli(capsys, "cache", "stats")
    assert "1" in out
    code, out = run_cli(capsys, "cache", "clear")
    assert code == 0
    assert "removed 1 cached result" in out


def test_run_warm_cache_skips_simulation(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code, cold = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                         "--scale", "0.1")
    assert code == 0
    from repro.harness import get_engine
    assert get_engine().stats.executed == 1
    code, warm = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                         "--scale", "0.1")
    assert code == 0
    assert get_engine().stats.cache_hits == 1
    assert get_engine().stats.executed == 0
    assert warm == cold                  # stdout is byte-identical


def test_no_cache_flag_forces_resimulation(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_cli(capsys, "run", "bzip", "--mode", "baseline", "--scale", "0.1")
    code, _ = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                      "--scale", "0.1", "--no-cache")
    assert code == 0
    from repro.harness import get_engine
    assert get_engine().stats.executed == 1
    assert get_engine().stats.cache_hits == 0


def test_compare_with_jobs_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code, out = run_cli(capsys, "compare", "bzip", "--scale", "0.1",
                        "--jobs", "2")
    assert code == 0
    for mode in ("baseline", "cdf", "pre"):
        assert mode in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "gcc"])


def test_all_figures_registered():
    assert set(FIGURES) == {
        "table1", "fig1", "fig13", "fig14", "fig15", "fig16", "fig17",
        "ablation-branches", "ablation-partitioning",
        "ablation-thresholds",
    }


def test_cache_subcommand_covers_trace_store(capsys, tmp_path, monkeypatch):
    from repro.harness import runner
    from repro.harness.tracestore import reset_trace_store

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runner._workload_cache.clear()
    reset_trace_store()
    code, _ = run_cli(capsys, "run", "bzip", "--mode", "baseline",
                      "--scale", "0.1")
    assert code == 0
    code, out = run_cli(capsys, "cache", "stats")
    assert code == 0
    assert "trace cache" in out
    assert str(tmp_path / "traces") in out
    code, out = run_cli(capsys, "cache", "clear")
    assert code == 0
    assert "removed 1 cached result" in out
    assert "removed 1 compiled trace" in out


def test_perf_subcommand_writes_report_and_compares(capsys, tmp_path,
                                                    monkeypatch):
    """`repro-sim perf` writes the stable-schema report and enforces the
    tolerance band against a previous run and a committed ratio floor
    (the timing itself is stubbed: CI noise is not a unit test's job)."""
    import json

    import repro.harness.perfbench as perfbench

    fake = {
        "schema": 1,
        "suite": [list(p) for p in perfbench.PERF_SUITE],
        "scale": 0.3,
        "reps": 3,
        "smoke": False,
        "timings": {"functional_s": 1.0, "trace_load_s": 0.4,
                    "sweep_cold_s": 4.0, "sweep_warm_s": 3.0},
        "derived": {"trace_compile_speedup": 2.5, "cold_over_warm": 1.33},
        "env": {"python": "x", "platform": "y"},
    }
    monkeypatch.setattr(perfbench, "run_perfbench",
                        lambda **kwargs: json.loads(json.dumps(fake)))
    report_path = tmp_path / "BENCH_perf.json"

    code, out = run_cli(capsys, "perf", "--quiet",
                        "--output", str(report_path))
    assert code == 0
    assert "report written to" in out
    on_disk = json.loads(report_path.read_text())
    assert on_disk == fake

    # Second run against its own previous report: inside the band.
    code, out = run_cli(capsys, "perf", "--quiet",
                        "--output", str(report_path))
    assert code == 0
    assert "no regressions" in out

    # A slower "previous" run does not fail (improvement), but a faster
    # one makes the current run a regression beyond the band.
    previous = json.loads(json.dumps(fake))
    previous["timings"]["sweep_warm_s"] = 1.0
    report_path.write_text(json.dumps(previous))
    code, out = run_cli(capsys, "perf", "--quiet",
                        "--output", str(report_path))
    assert code == 1
    assert "PERF REGRESSION" in out and "sweep_warm_s" in out

    # Committed ratio floors: current ratios far below the floor fail.
    report_path.unlink()
    floors = tmp_path / "floors.json"
    floors.write_text(json.dumps({"trace_compile_speedup": 9.0}))
    code, out = run_cli(capsys, "perf", "--quiet",
                        "--output", str(report_path),
                        "--baseline", str(floors))
    assert code == 1
    assert "trace_compile_speedup" in out

    floors.write_text(json.dumps({"trace_compile_speedup": 2.0}))
    report_path.unlink()
    code, out = run_cli(capsys, "perf", "--quiet",
                        "--output", str(report_path),
                        "--baseline", str(floors))
    assert code == 0


def test_sweep_subcommand_plain(capsys):
    code, out = run_cli(capsys, "sweep", "--knob", "mshrs",
                        "--values", "2", "16", "--benchmarks", "bzip",
                        "--modes", "baseline", "cdf", "--scale", "0.1")
    assert code == 0
    assert "sweep: mshrs" in out
    assert "cdf" in out


def test_sweep_subcommand_screened(capsys, tmp_path):
    out_path = tmp_path / "screen.json"
    code, out = run_cli(capsys, "sweep", "--knob", "mshrs", "--screen",
                        "--values", "1", "2", "4", "8", "16",
                        "--benchmarks", "bzip", "--modes", "baseline",
                        "--scale", "0.1", "--top-k", "2",
                        "--epsilon", "0.0", "--measure-recall",
                        "--out", str(out_path))
    assert "screened sweep: mshrs" in out
    assert "recall:" in out
    import json
    payload = json.loads(out_path.read_text())
    assert set(payload) >= {"scores", "promoted", "pruned", "recall"}
    assert code == (0 if payload["recall"] == 1.0 else 1)
