"""Tests for the two-tier analytic screening path.

The headline property — asserted over every pinned QUICK sweep — is
*promotion recall*: the value the cycle-accurate model ranks best must
always survive analytic screening.  Screening that prunes the true
optimum would silently corrupt every downstream study, so the recall
tests simulate the pruned points too and compare.
"""

import pytest

from repro.harness.engine import Engine, Job, ScreeningEngine
from repro.harness.sweep import (
    KNOBS,
    QUICK_SCREEN_SWEEPS,
    quick_screened_sweep,
    screened_sweep,
)

SMALL = 0.1


# ------------------------------------------------------ ScreeningEngine
def test_predict_scores_sim_jobs_and_counts():
    screening = ScreeningEngine(full_engine=Engine(jobs=1))
    job = Job("bzip", "baseline", scale=SMALL)
    prediction = screening.predict(job)
    assert prediction.ipc > 0
    assert screening.counters["screen_profiles_built"] == 1
    assert screening.counters["screen_configs_scored"] == 1
    # Same workload point: the profile is memoized, the score is not.
    screening.predict(Job("bzip", "cdf", scale=SMALL))
    assert screening.counters["screen_profiles_built"] == 1
    assert screening.counters["screen_configs_scored"] == 2


def test_predict_rejects_non_sim_jobs():
    screening = ScreeningEngine(full_engine=Engine(jobs=1))
    with pytest.raises(ValueError, match="sim"):
        screening.predict(Job("bzip", "baseline", scale=SMALL,
                              kind="trace"))


def test_run_delegates_to_the_full_tier():
    screening = ScreeningEngine(full_engine=Engine(jobs=1))
    [result] = screening.run([Job("bzip", "baseline", scale=SMALL)])
    assert result.ipc > 0
    assert screening.summary().startswith("screen:")


# ------------------------------------------------------- screened_sweep
def test_screened_sweep_prunes_and_reports():
    report = screened_sweep(KNOBS["mshrs"], (1, 2, 4, 8, 16), ("bzip",),
                            modes=("baseline",), scale=SMALL,
                            top_k=2, epsilon=0.0)
    assert len(report.scores) == 5
    assert set(report.promoted) | set(report.pruned) == {1, 2, 4, 8, 16}
    assert len(report.promoted) >= 2
    # Full results exist exactly for the promoted values.
    assert set(report.results) == set(report.promoted)
    assert report.best_promoted() in report.promoted
    assert report.recall is None          # not measured
    payload = report.to_dict()
    assert "recall" not in payload
    assert len(payload["scores"]) == 5


def test_screened_sweep_rejects_bad_top_k():
    with pytest.raises(ValueError, match="top_k"):
        screened_sweep(KNOBS["mshrs"], (1, 2), ("bzip",),
                       modes=("baseline",), scale=SMALL, top_k=0)


def test_epsilon_widens_the_promoted_set():
    screening = ScreeningEngine(full_engine=Engine(jobs=1))
    narrow = screened_sweep(KNOBS["mshrs"], (1, 2, 4, 8, 16), ("bzip",),
                            modes=("baseline",), scale=SMALL,
                            top_k=1, epsilon=0.0, screening=screening)
    wide = screened_sweep(KNOBS["mshrs"], (1, 2, 4, 8, 16), ("bzip",),
                          modes=("baseline",), scale=SMALL,
                          top_k=1, epsilon=1.0, screening=screening)
    assert set(narrow.promoted) <= set(wide.promoted)
    assert set(wide.promoted) == {1, 2, 4, 8, 16}  # eps=1.0 keeps all


# ------------------------------------------------- the recall property
@pytest.mark.parametrize("knob_name", sorted(QUICK_SCREEN_SWEEPS))
def test_screening_never_drops_the_true_best(knob_name):
    """Cycle-accurate argmax must be promoted on every pinned sweep."""
    report = quick_screened_sweep(knob_name, measure_recall=True)
    assert report.recall == 1.0, (
        f"{knob_name}: true best {report.true_best!r} was pruned "
        f"(promoted: {report.promoted!r}, scores: {report.scores!r})")
    assert report.true_best in report.promoted
    assert report.best_promoted() == report.true_best
