"""Tests for the docs checker behind ``repro-sim lint --docs``.

The repo-clean test here is the docs twin of
``tests/analysis/test_repo_clean.py``: the committed README and docs
tree must produce zero findings. The fixture tests pin that each class
of rot (broken link, broken anchor, stale CLI flag, moved module) is
actually caught.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.harness.docscheck import (
    check_docs,
    check_file,
    cli_surface,
    github_slug,
    heading_anchors,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


# ------------------------------------------------------------ repo clean
def test_committed_docs_are_clean():
    problems = check_docs(repo_root=str(REPO_ROOT))
    assert problems == []


def test_cli_lint_docs_dispatch(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["lint", "--docs"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


# ----------------------------------------------------------------- slugs
def test_github_slug_rules():
    assert github_slug("The Job Model") == "the-job-model"
    assert github_slug("`repro-sim trace`: export") == "repro-sim-trace-export"
    assert github_slug("Cache key anatomy") == "cache-key-anatomy"
    assert github_slug("Figures & paper parity!") == "figures--paper-parity"


def test_heading_anchors_dedup_and_fences():
    text = ("# Title\n"
            "## Setup\n"
            "```\n"
            "# not a heading (code)\n"
            "```\n"
            "## Setup\n")
    anchors = heading_anchors(text)
    assert anchors == {"title", "setup", "setup-1"}


# -------------------------------------------------------------- fixtures
def _findings(tmp_path, text):
    doc = tmp_path / "doc.md"
    doc.write_text(text, encoding="utf-8")
    return check_file(doc, tmp_path, cli_surface())


def test_broken_file_link_caught(tmp_path):
    problems = _findings(tmp_path, "see [guide](missing.md)\n")
    assert len(problems) == 1
    assert "broken link" in problems[0]


def test_broken_anchor_caught(tmp_path):
    (tmp_path / "other.md").write_text("# Real Heading\n")
    problems = _findings(
        tmp_path,
        "[ok](other.md#real-heading) [bad](other.md#no-such)\n"
        "[self](#nope)\n")
    assert len(problems) == 2
    assert all("broken anchor" in p for p in problems)


def test_link_escaping_repo_caught(tmp_path):
    problems = _findings(tmp_path, "[up](../../etc/passwd)\n")
    assert len(problems) == 1
    assert "escapes the repository" in problems[0]


def test_valid_links_pass(tmp_path):
    (tmp_path / "other.md").write_text("# Real Heading\n")
    assert _findings(
        tmp_path,
        "[f](other.md) [a](other.md#real-heading)\n"
        "[web](https://example.com/x.md)\n") == []


def test_stale_cli_flag_caught(tmp_path):
    problems = _findings(
        tmp_path,
        "```bash\nrepro-sim figures --quick --no-such-flag\n```\n")
    assert len(problems) == 1
    assert "--no-such-flag" in problems[0]


def test_unknown_subcommand_caught(tmp_path):
    problems = _findings(tmp_path, "run `repro-sim frobnicate` now\n")
    assert len(problems) == 1
    assert "unknown subcommand" in problems[0]


def test_cli_tolerates_plumbing_and_placeholders(tmp_path):
    assert _findings(
        tmp_path,
        "```bash\n"
        "REPRO_JOBS=8 repro-sim figures --quick --out d/ > log.txt\n"
        "repro-sim figures [--quick|--full] --fig N\n"
        "repro-sim <command> --help\n"
        "```\n"
        "prose naming the tool: `repro-sim` alone is fine\n") == []


def test_bad_module_path_caught(tmp_path):
    problems = _findings(
        tmp_path,
        "see `repro.harness.figures` and `repro.gone.module`\n")
    assert len(problems) == 1
    assert "repro.gone.module" in problems[0]


def test_module_attribute_paths_resolve(tmp_path):
    assert _findings(
        tmp_path,
        "`repro.harness.engine.Job` and `repro.harness.figures.REGISTRY`\n"
    ) == []
    problems = _findings(tmp_path, "`repro.harness.engine.NoSuchName`\n")
    assert len(problems) == 1


def test_fenced_links_not_checked(tmp_path):
    assert _findings(
        tmp_path, "```\n[example](not-a-real-file.md)\n```\n") == []


# ------------------------------------------------------------ CLI surface
def test_cli_surface_covers_new_subcommands():
    surface = cli_surface()
    assert "figures" in surface
    for flag in ("--quick", "--full", "--fig", "--check-baseline",
                 "--write-baseline", "--sync-doc", "--out", "--serve",
                 "--jobs", "--no-cache"):
        assert flag in surface["figures"], flag
    assert "lint" in surface
    assert "--docs" in surface["lint"]
    assert "--select" in surface["lint"]
