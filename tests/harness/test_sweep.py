"""Unit tests for the parameter-sweep utilities."""

import pytest

from repro.config import SimConfig
from repro.harness import (
    geomean_speedups,
    llc_size_knob,
    memory_speed_knob,
    mshr_knob,
    sweep,
)

SMALL = 0.1


def test_memory_speed_knob_scales_timings():
    base = SimConfig.baseline()
    config = memory_speed_knob(base, 0.5)
    assert config.dram.tcl == 8
    assert config.dram.trp == 8
    assert config.dram.trcd == 8
    floored = memory_speed_knob(config, 0.01)
    assert floored.dram.tcl >= 1    # clamped
    # Knobs are pure: the argument config is never touched.
    assert base.dram.tcl == SimConfig.baseline().dram.tcl


def test_mshr_knob():
    base = SimConfig.baseline()
    config = mshr_knob(base, 4)
    assert config.l1d.mshrs == 4
    assert config.llc.mshrs == 8
    assert base.l1d.mshrs == SimConfig.baseline().l1d.mshrs


def test_llc_size_knob():
    config = llc_size_knob(SimConfig.baseline(), 512 * 1024)
    assert config.llc.size_bytes == 512 * 1024


def test_sweep_shape_and_reduction():
    results = sweep(mshr_knob, (2, 16), ("bzip",),
                    modes=("baseline", "cdf"), scale=SMALL)
    assert set(results) == {2, 16}
    assert set(results[2]) == {"baseline", "cdf"}
    assert set(results[2]["cdf"]) == {"bzip"}
    reduced = geomean_speedups(results)
    assert set(reduced) == {2, 16}
    assert "cdf" in reduced[2]
    assert "baseline" not in reduced[2]
    assert reduced[2]["cdf"] > 0


def test_mshrs_bound_mlp_through_the_sweep():
    results = sweep(mshr_knob, (2, 16), ("milc",),
                    modes=("baseline",), scale=0.2)
    starved = results[2]["baseline"]["milc"]
    roomy = results[16]["baseline"]["milc"]
    assert starved.mlp <= roomy.mlp + 0.01
    assert starved.ipc <= roomy.ipc * 1.01
