"""Tests for the persistent compiled-trace store and the perf harness.

The trace store must be *transparent*: simulation results are
bit-identical whether a trace was just executed functionally,
deserialized from disk, or rebuilt after corruption — serial or
parallel.  These tests pin that down, plus the store's failure modes
(corrupt entries, salt drift, disabled store).
"""

import multiprocessing
import os

import pytest

from repro.harness import runner
from repro.harness.engine import Engine, Job
from repro.harness.perfbench import (
    PERF_SUITE,
    compare_ratios,
    compare_timings,
)
from repro.harness.runner import load_workload
from repro.harness.tracestore import (
    TraceStore,
    get_trace_store,
    reset_trace_store,
    trace_salt,
    trace_store_enabled,
)
from repro.isa import traceio

SMALL = 0.1
NAMES = ("bzip", "milc")
MODES = ("baseline", "cdf", "pre")


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    """Every test gets a private cache dir and fresh in-process caches."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_TRACE_CACHE", raising=False)
    runner._workload_cache.clear()
    reset_trace_store()
    yield
    runner._workload_cache.clear()
    reset_trace_store()


def fresh_trace(name="bzip", scale=SMALL):
    runner._workload_cache.clear()
    return load_workload(name, scale).trace()


# ------------------------------------------------------------ round-trip
def test_dumps_loads_byte_identity():
    """serialize -> deserialize -> serialize is byte-stable, and the
    reloaded uops carry identical fields."""
    trace = fresh_trace()
    blob = traceio.dumps_trace(trace)
    reloaded = traceio.loads_trace(blob)
    assert traceio.dumps_trace(reloaded) == blob
    assert len(reloaded) == len(trace)
    for a, b in zip(trace, reloaded):
        for attr in ("seq", "pc", "op", "dst", "srcs", "exec_lat",
                     "exec_class", "is_load", "is_store", "is_branch",
                     "is_cond_branch", "is_mem", "writes_reg", "mem_addr",
                     "taken", "next_pc", "src_deps", "store_dep"):
            assert getattr(a, attr) == getattr(b, attr), attr


def test_store_put_get_roundtrip(tmp_path):
    store = TraceStore(tmp_path / "private")
    trace = fresh_trace()
    store.put("bzip", SMALL, 42, trace)
    got = store.get("bzip", SMALL, 42)
    assert got is not None
    assert store.hits == 1
    assert traceio.dumps_trace(got) == traceio.dumps_trace(trace)
    assert store.get("bzip", SMALL, 43) is None      # different identity
    assert store.misses == 1


def test_load_workload_populates_and_reuses_store():
    fresh_trace()                                    # functional + put
    store = get_trace_store()
    assert len(store.entries()) == 1
    before = store.hits
    fresh_trace()                                    # new Workload object
    assert store.hits == before + 1


# ------------------------------------------------------------ corruption
def test_corrupt_entry_is_dropped_and_regenerated():
    reference = traceio.dumps_trace(fresh_trace())
    store = get_trace_store()
    [entry] = store.entries()
    entry.write_bytes(entry.read_bytes()[:50])       # truncate
    trace = fresh_trace()                            # miss -> functional
    assert traceio.dumps_trace(trace) == reference
    # The corrupt file was deleted and the regenerated trace persisted.
    [entry] = store.entries()
    assert traceio.dumps_trace(
        traceio.loads_trace(entry.read_bytes())) == reference


def test_version_mismatch_is_treated_as_corruption(tmp_path):
    store = TraceStore(tmp_path / "private")
    trace = fresh_trace()
    store.put("bzip", SMALL, 42, trace)
    [entry] = store.entries()
    blob = bytearray(entry.read_bytes())
    blob[4] = 0xEE                                   # bump version field
    entry.write_bytes(bytes(blob))
    assert store.get("bzip", SMALL, 42) is None
    assert store.entries() == []                     # deleted


# ------------------------------------------------------------ salt
def test_salt_change_invalidates_keys(monkeypatch):
    store = get_trace_store()
    trace = fresh_trace()
    assert store.get("bzip", SMALL, 42) is not None
    monkeypatch.setattr("repro.harness.tracestore.trace_salt",
                        lambda: "different-salt")
    assert store.get("bzip", SMALL, 42) is None      # old entry invisible
    store.put("bzip", SMALL, 42, trace)
    assert len(store.entries()) == 2                 # new key, old intact


def test_salt_is_stable_within_process():
    assert trace_salt() == trace_salt()
    assert len(trace_salt()) == 16


# ------------------------------------------------------------ disabling
def test_env_disables_store(monkeypatch):
    monkeypatch.setenv("REPRO_NO_TRACE_CACHE", "1")
    assert not trace_store_enabled()
    runner._workload_cache.clear()
    workload = load_workload("bzip", SMALL)
    assert workload.trace_loader is None
    assert workload.trace_saver is None
    workload.trace()
    assert get_trace_store().entries() == []


# ------------------------------------------------- zero re-execution
@pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="needs fork so workers inherit the monkeypatched stub")
def test_warm_store_parallel_run_never_reexecutes(monkeypatch):
    """With a warm trace store, a 2-worker engine run deserializes every
    trace: the functional model must not run in parent or children."""
    jobs = [Job(name, mode, scale=SMALL)
            for name in NAMES for mode in ("baseline", "cdf")]
    Engine(jobs=1, use_cache=False).run(jobs)        # populate the store
    runner._workload_cache.clear()

    def boom(*_args, **_kwargs):
        raise AssertionError("functional execution ran on a warm store")

    monkeypatch.setattr("repro.workloads.base.execute", boom)
    results = Engine(jobs=2, use_cache=False).run(jobs)
    assert len(results) == len(jobs)


# ------------------------------------------------------- bit identity
def test_serial_parallel_cold_warm_all_bit_identical():
    """Fingerprints must not depend on where the trace came from or how
    the sweep was executed: cold store (functional + compile), warm
    store (deserialize), store disabled, serial, and 2-worker parallel
    all agree for every mode."""
    jobs = [Job(name, mode, scale=SMALL)
            for name in NAMES for mode in MODES]

    runner._workload_cache.clear()
    cold = Engine(jobs=1, use_cache=False).run(jobs)
    assert len(get_trace_store().entries()) == len(NAMES)

    runner._workload_cache.clear()
    warm_serial = Engine(jobs=1, use_cache=False).run(jobs)

    runner._workload_cache.clear()
    warm_parallel = Engine(jobs=2, use_cache=False).run(jobs)

    os.environ["REPRO_NO_TRACE_CACHE"] = "1"
    try:
        runner._workload_cache.clear()
        no_store = Engine(jobs=1, use_cache=False).run(jobs)
    finally:
        del os.environ["REPRO_NO_TRACE_CACHE"]

    for a, b, c, d in zip(cold, warm_serial, warm_parallel, no_store):
        assert a.fingerprint() == b.fingerprint() \
            == c.fingerprint() == d.fingerprint()
        assert a == b == c == d


# ------------------------------------------------------------ LRU memo
def test_workload_cache_is_lru_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "2")
    runner._workload_cache.clear()
    load_workload("bzip", SMALL)
    load_workload("milc", SMALL)
    load_workload("bzip", SMALL)                     # refresh bzip
    load_workload("lbm", SMALL)                      # evicts milc (LRU)
    keys = [key[0] for key in runner._workload_cache]
    assert len(keys) == 2
    assert "milc" not in keys
    assert keys == ["bzip", "lbm"]


def test_workload_cache_hit_returns_same_object():
    first = load_workload("bzip", SMALL)
    assert load_workload("bzip", SMALL) is first


# ------------------------------------------------------------ perfbench
def test_perf_suite_shape_is_pinned():
    assert len(PERF_SUITE) == 6
    names = [name for name, _ in PERF_SUITE]
    assert len(set(names)) == 6                      # distinct workloads
    assert {mode for _, mode in PERF_SUITE} == set(MODES)


def test_compare_timings_flags_only_out_of_band():
    shape = {"schema": 1, "suite": [["a", "baseline"]], "scale": 0.3}
    previous = dict(shape, timings={"sweep_warm_s": 1.0})
    ok = dict(shape, timings={"sweep_warm_s": 1.2})
    bad = dict(shape, timings={"sweep_warm_s": 1.5})
    assert compare_timings(ok, previous, tolerance=0.30) == []
    assert len(compare_timings(bad, previous, tolerance=0.30)) == 1
    # Incomparable runs (different suite/scale) are never flagged.
    other = dict(shape, scale=0.1, timings={"sweep_warm_s": 9.0})
    assert compare_timings(other, previous, tolerance=0.30) == []


def test_compare_ratios_enforces_committed_floors():
    report = {"derived": {"trace_compile_speedup": 2.0}}
    assert compare_ratios(report, {"trace_compile_speedup": 1.5},
                          tolerance=0.30) == []
    assert len(compare_ratios(report, {"trace_compile_speedup": 3.5},
                              tolerance=0.30)) == 1
    # Non-numeric and unknown metrics are ignored.
    assert compare_ratios(report, {"note": "text", "unknown": 9.0},
                          tolerance=0.30) == []
