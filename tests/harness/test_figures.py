"""Tests for the paper-parity figure registry and pipeline.

Covers registry integrity (every spec resolves to real workloads and a
real runner), the verdict rules, QUICK determinism across worker
counts, the BENCH_figures.json history / pinned-baseline round trips,
the generated claim map in docs/PAPER_VS_CODE.md, and the CLI surface.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.harness import experiments
from repro.harness import figures as figmod
from repro.harness.engine import configure
from repro.harness.figures import (
    ANALYTIC,
    DIVERGED,
    MATCH,
    PLANNED,
    REGISTRY,
    RUNNERS,
    WITHIN,
    ClaimResult,
    FigureSpec,
    Profile,
    append_history,
    baseline_record,
    bench_record,
    check_baseline,
    format_figures,
    format_value,
    get_spec,
    implemented_specs,
    load_baseline,
    load_history,
    render_claim_map,
    run_claim,
    run_figures,
    summarize,
    sync_claim_map,
    verdict,
    write_baseline,
)
from repro.workloads import suite_names

REPO_ROOT = Path(__file__).resolve().parents[2]


# -------------------------------------------------------------- registry
def test_fig_ids_unique():
    ids = [spec.fig_id for spec in REGISTRY]
    assert len(ids) == len(set(ids))


def test_every_implemented_spec_resolves():
    """Each implemented claim names a real runner and profiles whose
    kernels exist in the suite — nothing can be silently unrunnable."""
    suite = set(suite_names())
    for spec in implemented_specs():
        assert spec.runner in RUNNERS, spec.fig_id
        for mode in ("quick", "full"):
            profile = spec.profile(mode)
            assert set(profile.names) <= suite, (spec.fig_id, mode)
            if profile is not ANALYTIC:
                assert 0.0 < profile.scale <= 1.0, (spec.fig_id, mode)
        if spec.runner == "fig17_scaling":
            for mode in ("quick", "full"):
                assert {352, 512} <= set(spec.profile(mode).rob_sizes)


def test_registry_covers_headline_figures():
    refs = {spec.paper_ref for spec in implemented_specs()}
    for ref in ("Fig. 1", "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16",
                "Fig. 17", "Table 1", "Sec. 4.2"):
        assert ref in refs


def test_planned_specs_have_no_command():
    planned = [spec for spec in REGISTRY if spec.status == "planned"]
    assert {spec.fig_id for spec in planned} == {
        "cgooo-energy", "multicore-criticality"}
    for spec in planned:
        assert spec.command == "-"
        with pytest.raises(ValueError, match="no quick profile"):
            spec.profile("quick")


def test_get_spec_unknown_lists_known():
    with pytest.raises(ValueError, match="fig13-cdf-uplift"):
        get_spec("nonsense")


def test_spec_command_and_paper_text():
    spec = get_spec("fig13-cdf-uplift")
    assert spec.command == "repro-sim figures --full --fig fig13-cdf-uplift"
    assert spec.paper_text() == "+6.10%"
    assert get_spec("fig14-cdf-mlp").paper_text() == ">= 1.000x"


def test_format_value_units():
    assert format_value("%", -3.5) == "-3.50%"
    assert format_value("pp", 2.3) == "+2.30pp"
    assert format_value("x", 1.0894) == "1.089x"
    assert format_value("% of ROB", 11.25) == "11.2%"


# -------------------------------------------------------------- verdicts
def test_verdict_value_kind_bands():
    spec = FigureSpec(fig_id="t", paper_ref="-", claim="-", unit="%",
                      paper_value=6.0, kind="value",
                      match_tol=2.0, tolerance=6.0, runner="x")
    assert verdict(spec, 6.0) == MATCH
    assert verdict(spec, 7.9) == MATCH
    assert verdict(spec, 4.1) == MATCH
    assert verdict(spec, 11.9) == WITHIN
    assert verdict(spec, 0.1) == WITHIN
    assert verdict(spec, 12.5) == DIVERGED
    assert verdict(spec, -0.5) == DIVERGED


def test_verdict_min_kind_directional():
    spec = FigureSpec(fig_id="t", paper_ref="-", claim="-", unit="x",
                      paper_value=1.0, kind="min", tolerance=0.05,
                      runner="x")
    assert verdict(spec, 1.2) == MATCH
    assert verdict(spec, 1.0) == MATCH
    assert verdict(spec, 0.97) == WITHIN
    assert verdict(spec, 0.9) == DIVERGED


def test_verdict_max_kind_directional():
    spec = FigureSpec(fig_id="t", paper_ref="-", claim="-", unit="%",
                      paper_value=2.0, kind="max", tolerance=1.0,
                      runner="x")
    assert verdict(spec, 1.5) == MATCH
    assert verdict(spec, 2.8) == WITHIN
    assert verdict(spec, 3.5) == DIVERGED


def test_verdict_planned_and_missing_value():
    planned = get_spec("cgooo-energy")
    assert verdict(planned, 0.0) == PLANNED
    assert verdict(get_spec("table1-area"), None) == PLANNED


# ------------------------------------------------------------- execution
def test_analytic_claim_runs_without_simulation():
    result = run_claim(get_spec("table1-area"), "quick")
    assert result.verdict in (MATCH, WITHIN)
    assert result.value == pytest.approx(3.2, abs=1.0)
    assert result.names == ()


def test_run_figures_never_skips_planned_claims():
    results = run_figures("quick",
                          fig_ids=["table1-area", "cgooo-energy"])
    by_id = {r.fig_id: r for r in results}
    assert by_id["cgooo-energy"].verdict == PLANNED
    assert by_id["cgooo-energy"].value is None
    assert by_id["table1-area"].value is not None
    counts = summarize(results)
    assert counts[PLANNED] == 1
    assert sum(counts.values()) == 2


def test_format_figures_renders_every_claim_and_total():
    results = run_figures("quick",
                          fig_ids=["table1-area", "cgooo-energy"])
    text = format_figures(results, "quick")
    assert "table1-area" in text
    assert "cgooo-energy" in text
    assert "TOTAL" in text
    assert "1 planned" in text


def test_quick_extractor_identical_across_worker_counts(tmp_path):
    """The QUICK metric is a pure function of the registry: a 2-worker
    engine must produce the exact value the serial engine does."""
    spec = dataclasses.replace(get_spec("fig13-cdf-uplift"),
                               quick=Profile(("bzip", "milc"), 0.1))
    saved = experiments._comparison_cache
    try:
        values = []
        for jobs in (1, 2):
            experiments._comparison_cache = {}
            configure(jobs=jobs, cache_dir=tmp_path / f"cache{jobs}")
            values.append(run_claim(spec, "quick").value)
        assert values[0] == values[1]
    finally:
        experiments._comparison_cache = saved
        configure()


# ----------------------------------------------------- history + baseline
def _fake_results():
    return [
        ClaimResult("fig13-cdf-uplift", "quick", 5.39, MATCH, 0.3,
                    ("astar", "mcf")),
        ClaimResult("cgooo-energy", "quick", None, PLANNED, 0.0, ()),
    ]


def test_bench_record_shape():
    record = bench_record(_fake_results(), "quick", seed=7)
    assert record["schema"] == figmod.SCHEMA_VERSION
    assert record["mode"] == "quick"
    assert record["seed"] == 7
    assert isinstance(record["generated_unix"], int)
    assert record["claims"]["fig13-cdf-uplift"]["value"] == 5.39
    assert record["claims"]["cgooo-energy"]["value"] is None
    assert record["summary"][MATCH] == 1


def test_history_round_trip_and_cap(tmp_path):
    path = str(tmp_path / "bench.json")
    assert load_history(path) == []
    record = bench_record(_fake_results(), "quick")
    history = append_history(record, path)
    assert history == [record]
    assert load_history(path) == [record]
    for _ in range(4):
        history = append_history(record, path, keep=3)
    assert len(history) == 3
    assert len(load_history(path)) == 3


def test_history_tolerates_garbage_file(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("{not json")
    assert load_history(str(path)) == []
    path.write_text(json.dumps({"schema": 999, "history": [{}]}))
    assert load_history(str(path)) == []


def test_baseline_strips_volatile_fields(tmp_path):
    record = bench_record(_fake_results(), "quick")
    pinned = baseline_record(record)
    assert "generated_unix" not in pinned
    assert "code" not in pinned
    path = str(tmp_path / "base.json")
    assert write_baseline(record, path) == pinned
    assert load_baseline(path) == pinned
    assert load_baseline(str(tmp_path / "missing.json")) is None


def test_check_baseline_detects_drift(tmp_path):
    record = bench_record(_fake_results(), "quick")
    baseline = baseline_record(record)
    assert check_baseline(record, baseline) == []

    drifted = json.loads(json.dumps(record))
    drifted["claims"]["fig13-cdf-uplift"]["value"] = 4.0
    drifted["claims"]["fig13-cdf-uplift"]["verdict"] = WITHIN
    problems = check_baseline(drifted, baseline)
    assert any("value 5.39 -> 4.0" in p for p in problems)
    assert any("verdict match -> within-tolerance" in p
               for p in problems)

    extra = json.loads(json.dumps(record))
    extra["claims"]["brand-new"] = {"value": 1.0, "verdict": MATCH}
    assert any("not in baseline" in p
               for p in check_baseline(extra, baseline))

    missing = json.loads(json.dumps(record))
    del missing["claims"]["cgooo-energy"]
    assert any("not in this run" in p
               for p in check_baseline(missing, baseline))

    other_mode = dict(record, mode="full")
    assert "not comparable" in check_baseline(other_mode, baseline)[0]


def test_repo_quick_baseline_matches_registry():
    """The committed pinned baseline covers exactly the registry."""
    baseline = load_baseline(str(REPO_ROOT / figmod.DEFAULT_BASELINE))
    assert baseline is not None, "benchmarks/figures_baseline.json missing"
    assert baseline["schema"] == figmod.SCHEMA_VERSION
    assert baseline["mode"] == "quick"
    assert set(baseline["claims"]) == {s.fig_id for s in REGISTRY}
    assert not any(claim["verdict"] == DIVERGED
                   for claim in baseline["claims"].values())


# ------------------------------------------------------------- claim map
def test_render_claim_map_has_row_per_spec():
    table = render_claim_map()
    for spec in REGISTRY:
        assert f"`{spec.fig_id}`" in table
    assert "repro-sim figures --full --fig table1-area" in table


def test_committed_claim_map_is_in_sync():
    """docs/PAPER_VS_CODE.md's generated block must equal what the
    registry renders today (regenerate with --sync-doc)."""
    doc = (REPO_ROOT / figmod.DEFAULT_CLAIM_DOC).read_text(
        encoding="utf-8")
    begin = doc.index(figmod.GENERATED_BEGIN) + len(figmod.GENERATED_BEGIN)
    end = doc.index(figmod.GENERATED_END)
    assert doc[begin:end].strip() == render_claim_map().strip()


def test_sync_claim_map_fills_and_is_idempotent(tmp_path):
    path = tmp_path / "doc.md"
    path.write_text(f"intro\n\n{figmod.GENERATED_BEGIN}\nstale\n"
                    f"{figmod.GENERATED_END}\n\noutro\n")
    assert sync_claim_map(str(path)) is True
    text = path.read_text()
    assert "intro" in text and "outro" in text
    assert "stale" not in text
    assert "`table1-area`" in text
    assert sync_claim_map(str(path)) is False      # second pass: no-op

    bare = tmp_path / "bare.md"
    bare.write_text("no markers here\n")
    with pytest.raises(ValueError, match="markers"):
        sync_claim_map(str(bare))


# ------------------------------------------------------------------- CLI
def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_figures_list(capsys):
    code, out = run_cli(capsys, "figures", "--list")
    assert code == 0
    for spec in REGISTRY:
        assert spec.fig_id in out
    assert "planned" in out


def test_cli_figures_single_claim_smoke(capsys):
    """`figures --fig table1-area --quick` runs end-to-end in CI time;
    a partial run never appends to the BENCH history."""
    code, out = run_cli(capsys, "figures", "--quick",
                        "--fig", "table1-area")
    assert code == 0
    assert "table1-area" in out
    assert "match" in out
    assert "run appended" not in out


def test_cli_figures_write_baseline_refuses_partial(capsys, tmp_path):
    code = main(["figures", "--quick", "--fig", "table1-area",
                 "--write-baseline",
                 "--baseline", str(tmp_path / "b.json")])
    capsys.readouterr()
    assert code == 2
    assert not (tmp_path / "b.json").exists()


def test_cli_figures_check_baseline_partial(capsys, tmp_path):
    """A --fig subset checks only the claims it ran against the pin."""
    baseline_path = tmp_path / "b.json"
    results = run_figures("quick", fig_ids=["table1-area"])
    write_baseline(bench_record(results, "quick"), str(baseline_path))
    code, out = run_cli(capsys, "figures", "--quick",
                        "--fig", "table1-area",
                        "--check-baseline", "--baseline",
                        str(baseline_path))
    assert code == 0
    assert "all claims match the pinned baseline" in out


def test_cli_figures_check_baseline_missing_file(capsys, tmp_path):
    code = main(["figures", "--quick", "--fig", "table1-area",
                 "--check-baseline",
                 "--baseline", str(tmp_path / "nope.json")])
    capsys.readouterr()
    assert code == 2
