"""Unit tests for the pipeline timeline renderer."""

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload
from repro.harness.timeline import (
    collect_events,
    first_seq_at_pc,
    render_timeline,
)
from repro.isa import assemble, execute


def small_run(pipeline_cls=BaselinePipeline, **kwargs):
    program = assemble("""
        movi r1, 12
        movi r2, 4096
    loop:
        load r3, [r2]
        add r4, r4, r3
        sub r1, r1, 1
        bnez r1, loop
        halt
    """)
    trace = execute(program)
    if pipeline_cls is BaselinePipeline:
        pipeline = pipeline_cls(trace, SimConfig.baseline())
    else:
        pipeline = pipeline_cls(trace, SimConfig.with_cdf(), program)
    pipeline.event_log = []
    pipeline.run()
    return pipeline, trace


def test_event_log_records_full_lifecycle():
    pipeline, trace = small_run()
    kinds_for_uop = {kind for cycle, kind, seq in pipeline.event_log
                     if seq == 5}
    assert {"F", "D", "I", "C", "R"} <= kinds_for_uop


def test_event_log_off_by_default():
    program = assemble("movi r1, 1\nhalt")
    pipeline = BaselinePipeline(execute(program), SimConfig.baseline())
    pipeline.run()
    assert pipeline.event_log is None


def test_collect_events_filters_range():
    pipeline, trace = small_run()
    grouped = collect_events(pipeline.event_log, 2, 5)
    assert set(grouped) <= {2, 3, 4, 5}
    assert grouped


def test_render_contains_rows_and_legend():
    pipeline, trace = small_run()
    text = render_timeline(pipeline.event_log, trace, 2, 9)
    assert "legend:" in text
    assert "#2" in text and "#9" in text
    assert "LD" in text
    # Every row fits the frame.
    lines = [line for line in text.splitlines() if line.startswith("#")]
    assert len(lines) == 8
    assert len({line.index("|") for line in lines}) == 1


def test_render_empty_range_is_graceful():
    pipeline, trace = small_run()
    assert "no events" in render_timeline(pipeline.event_log, trace,
                                          10**6, 10**6 + 3)


def test_time_compression_for_wide_windows():
    pipeline, trace = small_run()
    text = render_timeline(pipeline.event_log, trace, 0,
                           len(trace) - 1, max_width=20)
    assert "1 column =" in text


def test_first_seq_at_pc():
    _, trace = small_run()
    first = first_seq_at_pc(trace, 2, occurrence=0)
    second = first_seq_at_pc(trace, 2, occurrence=1)
    assert trace[first].pc == 2
    assert second > first
    assert first_seq_at_pc(trace, 2, occurrence=10**6) is None


def test_cdf_events_appear_in_cdf_runs():
    workload = load_workload("milc", 0.4)
    trace = workload.trace()
    pipeline = CDFPipeline(trace, SimConfig.with_cdf(), workload.program)
    pipeline.event_log = []
    pipeline.run()
    kinds = {kind for _, kind, _ in pipeline.event_log}
    assert {"f", "d", "p", "R"} <= kinds
