"""Unit tests for the energy/area model."""

import pytest

from repro.config import SimConfig
from repro.energy import EnergyModel, Structure
from repro.stats import Counters, SimResult


def make_result(mode="baseline", cycles=10_000, **counter_overrides):
    counters = Counters({
        "fetch_uops": 5000, "rename_uops": 5000, "rob_writes": 5000,
        "rob_reads": 5000, "wakeup_broadcasts": 5000, "prf_reads": 8000,
        "prf_writes": 4000, "lq_searches": 500, "sq_searches": 1000,
        "l1i_accesses": 1000, "l1d_accesses": 1500, "llc_accesses": 200,
        "bpred_lookups": 800, "btb_lookups": 800,
    })
    counters.update(counter_overrides)
    return SimResult(
        benchmark="t", mode=mode, cycles=cycles, retired_uops=5000,
        mlp=1.0, dram_reads={"demand": 100}, dram_writes={},
        full_window_stall_cycles=0, counters=counters)


# ----------------------------------------------------------------- Structure
def test_access_energy_grows_with_capacity():
    small = Structure("a", 32 * 1024)
    big = Structure("b", 1024 * 1024)
    assert big.access_energy_pj() > small.access_energy_pj()


def test_cam_costs_more_than_sram():
    sram = Structure("a", 4096, kind="sram")
    cam = Structure("b", 4096, kind="cam")
    assert cam.access_energy_pj() > sram.access_energy_pj() * 2
    assert cam.area_mm2() > sram.area_mm2()
    assert cam.leakage_nw() > sram.leakage_nw()


def test_ports_multiply_energy_and_area():
    one = Structure("a", 4096, ports=1)
    four = Structure("b", 4096, ports=4)
    assert four.access_energy_pj() > one.access_energy_pj()
    assert four.area_mm2() > one.area_mm2()


# ---------------------------------------------------------------- EnergyModel
def test_compute_fills_result_energy():
    model = EnergyModel(SimConfig.baseline())
    result = make_result()
    breakdown = model.compute(result)
    assert result.energy_nj == pytest.approx(breakdown.total_nj)
    assert breakdown.total_nj > 0
    assert breakdown.static_nj > 0
    assert breakdown.dram_nj > 0


def test_longer_runtime_costs_static_energy():
    model = EnergyModel(SimConfig.baseline())
    fast = model.compute(make_result(cycles=10_000))
    slow = model.compute(make_result(cycles=20_000))
    assert slow.static_nj == pytest.approx(2 * fast.static_nj)
    assert slow.total_nj > fast.total_nj


def test_dram_traffic_costs_energy():
    model = EnergyModel(SimConfig.baseline())
    quiet = make_result()
    noisy = make_result()
    noisy.dram_reads = {"demand": 100, "runahead": 400}
    assert model.compute(noisy).dram_nj > model.compute(quiet).dram_nj


def test_cdf_structures_only_charged_in_cdf_mode():
    model = EnergyModel(SimConfig.with_cdf())
    plain = make_result(mode="baseline")
    with_cdf = make_result(mode="cdf", uop_cache_reads=2000,
                           crit_rename_uops=1500, cct_updates=1500,
                           fill_walk_uops=1024, dbq_pops=300,
                           crit_fetch_uops=1500, replayed_uops=1500)
    e_plain = model.compute(plain)
    e_cdf = model.compute(with_cdf)
    assert "uop_cache" in e_cdf.dynamic_nj
    assert "uop_cache" not in e_plain.dynamic_nj
    # The structure overhead is small (paper: ~2% energy overhead).
    cdf_extra = sum(v for k, v in e_cdf.dynamic_nj.items()
                    if k in ("uop_cache", "mask_cache", "cct", "fill_buffer",
                             "dbq", "cmq", "crit_rat"))
    assert cdf_extra < 0.1 * e_cdf.total_nj


def test_duplicate_execution_costs_energy():
    """PRE's re-executed chain uops show up via rename counts."""
    model = EnergyModel(SimConfig.with_pre())
    normal = make_result(mode="pre")
    duplicated = make_result(mode="pre", crit_rename_uops=3000)
    assert model.compute(duplicated).core_uop_nj > \
        model.compute(normal).core_uop_nj


def test_area_overhead_matches_paper():
    model = EnergyModel(SimConfig.with_cdf())
    assert model.baseline_area_mm2() > 0
    assert 0.02 < model.cdf_area_overhead() < 0.05   # paper: 3.2%


def test_static_share_is_plausible():
    """Static+clock should be a material share of total (the lever that
    converts CDF's runtime reduction into an energy reduction)."""
    model = EnergyModel(SimConfig.baseline())
    breakdown = model.compute(make_result())
    share = breakdown.static_nj / breakdown.total_nj
    assert 0.2 < share < 0.9
