"""Session-wide test fixtures.

The experiment engine memoizes results to ``~/.cache/repro-sim`` by
default; point it at a per-session temporary directory instead so the
test suite is hermetic — runs neither read from nor write to the
developer's real result cache.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-sim-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
