"""CDF over call/return-structured code (RAS + cross-procedure chains)."""

import random

import pytest

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.isa import ProgramBuilder, execute
from repro.runahead import PREPipeline


def call_heavy_workload(iters=1200, seed=5):
    """A loop calling a helper that performs the critical gather — the
    critical chain spans the call boundary."""
    rng = random.Random(seed)
    table = 1 << 13
    memory = {(1 << 24) + i * 8: rng.randrange(1 << 20)
              for i in range(table)}
    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, 1 << 24)
    b.movi(3, 1 << 26)
    b.movi(4, 0)
    b.label("loop")
    b.call("gather")
    b.add(8, 8, 6)
    for _ in range(8):
        b.movi(20, 3)
        b.add(20, 20, imm=1)
    b.add(4, 4, imm=1)
    b.and_(4, 4, imm=table - 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    b.label("gather")
    b.load(5, base=2, index=4, scale=8)
    b.load(6, base=3, index=5, scale=8)    # the LLC miss
    b.ret()
    program = b.build()
    return program, execute(program, memory, max_uops=300_000)


@pytest.fixture(scope="module")
def runs():
    program, trace = call_heavy_workload()
    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    cdf_pipe = CDFPipeline(trace, SimConfig.with_cdf(), program)
    cdf = cdf_pipe.run()
    pre = PREPipeline(trace, SimConfig.with_pre(), program).run()
    return program, trace, base, cdf, pre, cdf_pipe


def test_all_cores_complete_call_heavy_code(runs):
    _, trace, base, cdf, pre, _ = runs
    assert base.retired_uops == len(trace)
    assert cdf.retired_uops == len(trace)
    assert pre.retired_uops == len(trace)


def test_cdf_engages_across_call_boundaries(runs):
    _, _, _, cdf, _, pipe = runs
    assert cdf.counters["cdf_mode_entries"] > 0
    assert cdf.counters["crit_fetch_uops"] > 0
    assert not pipe.critically_fetched


def test_cdf_accounting_balances_with_calls(runs):
    _, _, _, cdf, _, _ = runs
    assert cdf.counters["crit_rename_uops"] == (
        cdf.counters["replayed_uops"]
        + cdf.counters["violation_flushed_uops"])


def test_returns_predicted_by_ras(runs):
    _, trace, base, _, _, _ = runs
    rets = sum(1 for u in trace if u.is_branch and not u.is_cond_branch
               and not u.taken is False and u.pc == max(x.pc for x in trace))
    # The RAS should make call/ret control flow essentially free.
    mpki = 1000 * base.counters["branch_mispredicts"] / base.retired_uops
    assert mpki < 5


def test_cdf_not_slower_than_baseline_on_calls(runs):
    _, _, base, cdf, _, _ = runs
    assert cdf.ipc > base.ipc * 0.97
