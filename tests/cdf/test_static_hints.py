"""Unit tests for compiler-assisted CDF (static chain hints)."""

import pytest

from repro.cdf import (
    CDFPipeline,
    StaticChainHints,
    preload_hints,
    profile_chains,
)
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload

SCALE = 0.25


@pytest.fixture(scope="module")
def astar():
    workload = load_workload("astar", SCALE)
    return workload, workload.trace()


@pytest.fixture(scope="module")
def hints(astar):
    workload, trace = astar
    return profile_chains(workload.program, trace, profile_uops=8000)


def test_profile_finds_the_critical_blocks(astar, hints):
    workload, trace = astar
    assert len(hints) > 0
    # The loop body block (containing the gather) must be hinted.
    gather = next(u for u in trace if u.is_load and u.mem_addr >= (1 << 26))
    loop_bb = workload.program.basic_block_start(gather.pc)
    assert loop_bb in hints.bb_masks
    assert hints.bb_masks[loop_bb] >> (gather.pc - loop_bb) & 1
    assert 0.0 < hints.critical_fraction < 0.5


def test_hints_roundtrip_through_json(tmp_path, hints):
    path = str(tmp_path / "astar.hints.json")
    hints.save(path)
    loaded = StaticChainHints.load(path)
    assert loaded.bb_masks == hints.bb_masks
    assert loaded.bb_ends_in_branch == hints.bb_ends_in_branch
    assert loaded.critical_fraction == pytest.approx(
        hints.critical_fraction)


def test_bad_hint_version_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 2, "blocks": []}')
    with pytest.raises(ValueError, match="version"):
        StaticChainHints.load(str(path))


def test_preload_installs_blocks(astar, hints):
    workload, trace = astar
    pipeline = CDFPipeline(trace, SimConfig.with_cdf(), workload.program)
    installed = preload_hints(pipeline, hints)
    assert installed == len(hints)
    assert pipeline.counters["static_hint_blocks"] == installed
    # The uop cache hits immediately (no fill latency).
    for bb in hints.bb_masks:
        assert pipeline.uop_cache.lookup(bb, cycle=0) is not None


def test_density_gate_rejects_overmarked_hints(astar):
    workload, trace = astar
    pipeline = CDFPipeline(trace, SimConfig.with_cdf(), workload.program)
    bogus = StaticChainHints(bb_masks={0: (1 << 64) - 1},
                             critical_fraction=0.9)
    assert preload_hints(pipeline, bogus) == 0
    assert pipeline.counters["static_hints_rejected"] == 1
    # Force-install bypasses the gate.
    assert preload_hints(pipeline, bogus,
                         respect_density_gates=False) == 1


def test_hinted_cdf_engages_earlier_and_is_faster(astar, hints):
    workload, trace = astar
    base = BaselinePipeline(trace, SimConfig.baseline()).run()

    plain = CDFPipeline(trace, SimConfig.with_cdf(),
                        workload.program).run()
    hinted_pipe = CDFPipeline(trace, SimConfig.with_cdf(),
                              workload.program)
    preload_hints(hinted_pipe, hints)
    hinted = hinted_pipe.run()

    assert hinted.counters["cdf_mode_cycles"] > \
        plain.counters["cdf_mode_cycles"]
    assert hinted.ipc >= plain.ipc
    assert hinted.ipc > base.ipc
    # Architectural work unchanged.
    assert hinted.retired_uops == plain.retired_uops


def test_hardware_training_still_refines_hinted_runs(astar, hints):
    """The CCT/Fill Buffer machinery keeps running with hints installed."""
    workload, trace = astar
    pipeline = CDFPipeline(trace, SimConfig.with_cdf(), workload.program)
    preload_hints(pipeline, hints)
    result = pipeline.run()
    assert result.counters["fill_walks"] > 0
