"""Unit tests for the CDF FIFOs and the dynamic partition controller."""

import pytest

from repro.config import CDFConfig
from repro.cdf import (
    CMQEntry,
    CriticalMapQueue,
    DBQEntry,
    DelayedBranchQueue,
    PartitionController,
    PartitionedResource,
)


# -------------------------------------------------------------------- FIFOs
def test_dbq_fifo_order():
    q = DelayedBranchQueue(4)
    q.push(DBQEntry(1, True, False, False))
    q.push(DBQEntry(2, False, True, True))
    assert q.peek().seq == 1
    assert q.pop().seq == 1
    assert q.pop().seq == 2
    assert q.empty


def test_dbq_overflow_and_underflow():
    q = DelayedBranchQueue(1)
    q.push(DBQEntry(1, True, False, False))
    assert q.full
    with pytest.raises(RuntimeError, match="overflow"):
        q.push(DBQEntry(2, True, False, False))
    q.pop()
    with pytest.raises(RuntimeError, match="underflow"):
        q.pop()


def test_program_order_flush():
    q = CriticalMapQueue(8)
    for seq in (1, 5, 9, 12):
        q.push(CMQEntry(seq, 0))
    dropped = q.flush_younger_than(9)
    assert dropped == 2
    assert [e.seq for e in list(q._q)] == [1, 5]
    assert q.flushed_entries == 2


def test_flush_with_no_matches():
    q = CriticalMapQueue(8)
    q.push(CMQEntry(1, 0))
    assert q.flush_younger_than(100) == 0
    assert len(q) == 1


def test_clear_counts_flushed():
    q = DelayedBranchQueue(8)
    q.push(DBQEntry(1, True, False, False))
    q.push(DBQEntry(2, True, False, False))
    q.clear()
    assert q.empty
    assert q.flushed_entries == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        DelayedBranchQueue(0)


# ---------------------------------------------------------------- partitions
def make_resource(total=64, critical=32, step=8):
    return PartitionedResource("rob", total, critical, step,
                               min_critical=8, min_noncritical=16)


def test_partition_sizes_sum():
    r = make_resource()
    assert r.critical_size + r.noncritical_size == r.total


def test_grow_on_critical_stall_imbalance():
    r = make_resource()
    for _ in range(4):
        r.note_stall(critical=True)
    change = r.rebalance(threshold=4)
    assert change == 8
    assert r.critical_size == 40
    assert r.grows == 1
    # counters reset after a change
    assert r.critical_stall_cycles == 0


def test_shrink_on_noncritical_stall_imbalance():
    r = make_resource()
    for _ in range(4):
        r.note_stall(critical=False)
    change = r.rebalance(threshold=4)
    assert change == -8
    assert r.critical_size == 24
    assert r.shrinks == 1


def test_no_change_below_threshold():
    r = make_resource()
    r.note_stall(critical=True)
    assert r.rebalance(threshold=4) == 0


def test_bounds_respected():
    r = make_resource(total=64, critical=48)
    for _ in range(100):
        r.note_stall(critical=True, weight=10)
        r.rebalance(threshold=4)
    assert r.noncritical_size >= r.min_noncritical
    r2 = make_resource(critical=8)
    for _ in range(100):
        r2.note_stall(critical=False, weight=10)
        r2.rebalance(threshold=4)
    assert r2.critical_size >= r2.min_critical


def test_decay_releases_to_floor():
    r = make_resource(critical=32)
    for _ in range(20):
        r.decay_toward_noncritical()
    assert r.critical_size == 0


def test_ensure_minimum():
    r = make_resource(critical=8)
    r.ensure_minimum(32)
    assert r.critical_size == 32
    r.ensure_minimum(1000)   # clamped by min_noncritical
    assert r.noncritical_size >= r.min_noncritical


def test_controller_uses_table1_steps():
    cfg = CDFConfig()
    ctl = PartitionController(cfg, rob_size=352, lq_size=128, sq_size=72,
                              rs_size=160)
    assert ctl.rob.step == 8      # ROB/RS step (Sec. 3.5)
    assert ctl.lq.step == 2       # LQ/SQ step
    assert ctl.sq.step == 2
    assert 0 < ctl.rs_critical_size <= 160


def test_controller_rs_share_follows_rob():
    cfg = CDFConfig()
    ctl = PartitionController(cfg, 352, 128, 72, 160)
    before = ctl.rs_critical_size
    for _ in range(4):
        ctl.rob.note_stall(critical=True)
    ctl.rebalance_all()
    assert ctl.rs_critical_size > before
