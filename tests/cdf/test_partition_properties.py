"""Property-based tests for dynamic partitioning invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import CDFConfig
from repro.cdf import PartitionController, PartitionedResource

_EVENTS = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=12)),
    min_size=1, max_size=200)


@given(_EVENTS)
@settings(max_examples=100, deadline=None)
def test_partition_invariants_under_any_stall_sequence(events):
    resource = PartitionedResource("rob", total=352, critical_size=176,
                                   step=8, min_critical=8,
                                   min_noncritical=32)
    for critical, weight in events:
        resource.note_stall(critical, weight)
        resource.rebalance(threshold=4)
        # Invariants hold after every adjustment.
        assert resource.critical_size + resource.noncritical_size == 352
        assert resource.critical_size >= resource.min_critical
        assert resource.noncritical_size >= resource.min_noncritical


@given(_EVENTS)
@settings(max_examples=60, deadline=None)
def test_decay_and_reentry_stay_in_bounds(events):
    cfg = CDFConfig()
    controller = PartitionController(cfg, 352, 128, 72, 160)
    for i, (critical, weight) in enumerate(events):
        if i % 7 == 6:
            controller.decay_all()
        elif i % 11 == 10:
            controller.on_mode_entry()
        else:
            controller.rob.note_stall(critical, weight)
            controller.lq.note_stall(not critical, weight)
            controller.rebalance_all()
        for res in (controller.rob, controller.lq, controller.sq):
            assert 0 <= res.critical_size <= res.total
            assert res.noncritical_size >= 0
        assert 0 < controller.rs_critical_size <= 160


@given(st.integers(min_value=16, max_value=1024))
@settings(max_examples=40, deadline=None)
def test_controller_scales_to_any_core_size(rob_size):
    cfg = CDFConfig()
    controller = PartitionController(cfg, rob_size,
                                     max(8, rob_size // 3),
                                     max(8, rob_size // 5), 160)
    assert controller.rob.critical_size + controller.rob.noncritical_size \
        == rob_size
    controller.on_mode_entry()
    assert controller.rob.noncritical_size >= 0
