"""Unit tests for the Critical Count Tables."""

import pytest

from repro.config import CDFConfig
from repro.cdf import CriticalCountTable, make_branch_cct, make_load_cct


def make_table(**kw):
    defaults = dict(entries=8, ways=2, strict_max=15, strict_threshold=12,
                    permissive_max=7, permissive_threshold=4)
    defaults.update(kw)
    return CriticalCountTable(**defaults)


def test_entries_must_divide_ways():
    with pytest.raises(ValueError):
        make_table(entries=7, ways=2)


def test_unknown_pc_is_not_critical():
    t = make_table()
    assert not t.is_critical(0x40)
    assert t.counters_for(0x40) is None


def test_permissive_marks_before_strict():
    t = make_table()
    pc = 0x10
    for _ in range(4):
        t.update(pc, True)
    assert t.is_critical(pc, permissive=True)
    assert not t.is_critical(pc, permissive=False)
    for _ in range(8):
        t.update(pc, True)
    assert t.is_critical(pc, permissive=False)


def test_counters_saturate():
    t = make_table()
    pc = 0x20
    for _ in range(100):
        t.update(pc, True)
    strict, permissive = t.counters_for(pc)
    assert strict == 15
    assert permissive == 7


def test_misses_then_hits_decays():
    t = make_table()
    pc = 0x30
    for _ in range(15):
        t.update(pc, True)
    assert t.is_critical(pc)
    for _ in range(8):
        t.update(pc, False)
    assert not t.is_critical(pc)      # strict fell below 12
    strict, permissive = t.counters_for(pc)
    assert strict == 7 and permissive == 0


def test_no_allocation_on_non_critical_event():
    t = make_table()
    t.update(0x50, False)
    assert t.counters_for(0x50) is None


def test_lru_eviction_within_set():
    t = make_table(entries=2, ways=2)   # one set
    t.update(0, True)
    t.update(2, True)
    t.update(0, True)    # refresh pc 0
    t.update(4, True)    # evicts pc 2
    assert t.counters_for(2) is None
    assert t.counters_for(0) is not None
    assert t.evictions == 1


def test_factories_use_config_geometry():
    cfg = CDFConfig()
    loads = make_load_cct(cfg)
    branches = make_branch_cct(cfg)
    assert loads.num_sets * loads.ways == cfg.cct_entries
    assert branches.num_sets * branches.ways == cfg.branch_table_entries
    # Branch thresholds differ from load thresholds, per Sec. 3.2.
    assert branches.strict_threshold != loads.strict_threshold


def test_interleaved_pcs_tracked_independently():
    t = make_table(entries=8, ways=2)
    for _ in range(15):
        t.update(1, True)
        t.update(3, False)
    assert t.is_critical(1)
    assert not t.is_critical(3)
