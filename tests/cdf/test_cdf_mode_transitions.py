"""Focused tests for CDF mode entry/exit and partition lifecycle."""

import pytest

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload


@pytest.fixture(scope="module")
def astar():
    workload = load_workload("astar", 0.25)
    return workload, workload.trace()


def run_cdf(astar, **cdf_overrides):
    workload, trace = astar
    config = SimConfig.with_cdf()
    for key, value in cdf_overrides.items():
        setattr(config.cdf, key, value)
    pipeline = CDFPipeline(trace, config, workload.program)
    result = pipeline.run()
    return pipeline, result


def test_mode_needs_a_filled_uop_cache(astar):
    # With an impossibly-high fill latency, traces never become visible
    # and CDF never engages.
    _, result = run_cdf(astar, fill_latency_cycles=10_000_000)
    assert result.counters["cdf_mode_entries"] == 0
    assert result.counters["crit_fetch_uops"] == 0


def test_entries_and_exits_balance(astar):
    pipeline, result = run_cdf(astar)
    entries = result.counters["cdf_mode_entries"]
    exits = result.counters["cdf_mode_exits"]
    assert entries >= 1
    # The run can end while still in CDF mode: at most one unbalanced.
    assert entries - exits in (0, 1)
    assert (entries - exits == 1) == pipeline.cdf_mode


def test_partitions_drain_after_the_run(astar):
    pipeline, _ = run_cdf(astar)
    assert len(pipeline.rob_crit) == 0
    assert pipeline.lq_crit_used == 0
    assert pipeline.sq_crit_used == 0
    assert pipeline.writers_crit == 0


def test_extra_rename_stage_costs_cycles(astar):
    _, with_stage = run_cdf(astar, extra_rename_stage=True)
    _, without = run_cdf(astar, extra_rename_stage=False)
    # Removing the worst-case extra stage can only help (or tie).
    assert without.cycles <= with_stage.cycles * 1.01


def test_tiny_uop_cache_limits_cdf(astar):
    _, big = run_cdf(astar)
    _, tiny = run_cdf(astar, uop_cache_entries=4, uop_cache_ways=2)
    assert tiny.counters["cdf_mode_cycles"] <= \
        big.counters["cdf_mode_cycles"]


def test_small_dbq_throttles_critical_lookahead(astar):
    _, wide = run_cdf(astar)
    _, narrow = run_cdf(astar, delayed_branch_queue_entries=2)
    assert narrow.counters["crit_fetch_uops"] <= \
        wide.counters["crit_fetch_uops"]
    # Still correct.
    assert narrow.retired_uops == wide.retired_uops


def test_small_cmq_throttles_critical_lookahead(astar):
    _, wide = run_cdf(astar)
    _, narrow = run_cdf(astar, critical_map_queue_entries=4)
    assert narrow.retired_uops == wide.retired_uops
    assert narrow.ipc <= wide.ipc * 1.01


def test_mode_cycles_bounded_by_total(astar):
    _, result = run_cdf(astar)
    assert 0 < result.counters["cdf_mode_cycles"] <= result.cycles


def test_cdf_mode_uses_uop_cache_reads(astar):
    _, result = run_cdf(astar)
    assert result.counters["uop_cache_reads"] > 0
    assert result.counters["dbq_pops"] > 0


def test_disabled_branch_marking_blocks_fewer_critical_branches(astar):
    _, with_branches = run_cdf(astar, mark_branches_critical=True)
    _, without = run_cdf(astar, mark_branches_critical=False)
    assert without.counters["crit_fetch_blocked_on_critical_branch"] == 0
