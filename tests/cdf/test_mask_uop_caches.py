"""Unit tests for the Mask Cache and the Critical Uop Cache."""

import pytest

from repro.cdf import CriticalUopCache, MaskCache


# ----------------------------------------------------------------- MaskCache
def test_mask_cache_miss_then_accumulate():
    mc = MaskCache(entries=16, ways=4)
    assert mc.lookup(0x40) is None
    mc.accumulate(0x40, 0b0101)
    assert mc.lookup(0x40) == 0b0101


def test_mask_cache_accumulates_or():
    mc = MaskCache(entries=16, ways=4)
    mc.accumulate(0x40, 0b0101)
    merged = mc.accumulate(0x40, 0b0011)
    assert merged == 0b0111
    assert mc.lookup(0x40) == 0b0111


def test_mask_cache_reset_clears_everything():
    mc = MaskCache(entries=16, ways=4)
    mc.accumulate(0x40, 1)
    mc.accumulate(0x80, 2)
    mc.reset()
    assert mc.lookup(0x40) is None
    assert mc.lookup(0x80) is None
    assert mc.resets == 1


def test_mask_cache_remove():
    mc = MaskCache(entries=16, ways=4)
    mc.accumulate(0x40, 1)
    assert mc.remove(0x40)
    assert mc.lookup(0x40) is None
    assert not mc.remove(0x40)


def test_mask_cache_eviction_within_set():
    mc = MaskCache(entries=2, ways=2)   # one set
    mc.accumulate(0, 1)
    mc.accumulate(1, 2)
    mc.lookup(0)                        # refresh block 0
    mc.accumulate(2, 4)                 # evicts block 1
    assert mc.lookup(1) is None
    assert mc.lookup(0) == 1
    assert mc.evictions == 1


def test_mask_cache_snapshot():
    mc = MaskCache(entries=16, ways=4)
    mc.accumulate(3, 0b1)
    mc.accumulate(7, 0b10)
    snap = mc.snapshot_masks()
    assert snap == {3: 0b1, 7: 0b10}


def test_mask_cache_geometry_validation():
    with pytest.raises(ValueError):
        MaskCache(entries=5, ways=2)


# ------------------------------------------------------------ CriticalUopCache
def test_uop_cache_fill_and_lookup():
    uc = CriticalUopCache(entries=16, ways=4)
    uc.fill(0x10, mask=0b110, ends_in_branch=True, valid_from=0)
    entry = uc.lookup(0x10, cycle=5)
    assert entry is not None
    assert entry.mask == 0b110
    assert entry.ends_in_branch
    assert entry.n_critical == 2


def test_uop_cache_fill_latency_hides_entry():
    uc = CriticalUopCache(entries=16, ways=4)
    uc.fill(0x10, mask=1, ends_in_branch=False, valid_from=1200)
    assert uc.lookup(0x10, cycle=100) is None
    assert uc.lookup(0x10, cycle=1200) is not None


def test_uop_cache_multi_line_traces():
    uc = CriticalUopCache(entries=16, ways=4, uops_per_trace=8)
    mask = (1 << 20) - 1    # 20 critical uops -> 3 lines
    entry = uc.fill(0x10, mask=mask, ends_in_branch=False, valid_from=0)
    assert entry.lines == 3


def test_uop_cache_refresh_updates_mask():
    uc = CriticalUopCache(entries=16, ways=4)
    uc.fill(0x10, mask=0b1, ends_in_branch=False, valid_from=0)
    uc.fill(0x10, mask=0b111, ends_in_branch=True, valid_from=0)
    entry = uc.lookup(0x10, cycle=0)
    assert entry.mask == 0b111
    assert entry.ends_in_branch


def test_uop_cache_remove():
    uc = CriticalUopCache(entries=16, ways=4)
    uc.fill(0x10, mask=1, ends_in_branch=False, valid_from=0)
    assert uc.remove(0x10)
    assert uc.lookup(0x10, cycle=0) is None
    assert not uc.remove(0x10)


def test_uop_cache_hit_rate():
    uc = CriticalUopCache(entries=16, ways=4)
    uc.lookup(0x10, 0)
    uc.fill(0x10, mask=1, ends_in_branch=False, valid_from=0)
    uc.lookup(0x10, 0)
    assert uc.hit_rate == pytest.approx(0.5)


def test_uop_cache_eviction():
    uc = CriticalUopCache(entries=2, ways=2)   # one set
    uc.fill(0, mask=1, ends_in_branch=False, valid_from=0)
    uc.fill(1, mask=1, ends_in_branch=False, valid_from=0)
    uc.lookup(0, 0)
    uc.fill(2, mask=1, ends_in_branch=False, valid_from=0)
    assert uc.lookup(1, 0) is None
    assert uc.lookup(0, 0) is not None
    assert uc.evictions == 1


def test_uop_cache_geometry_validation():
    with pytest.raises(ValueError):
        CriticalUopCache(entries=2, ways=4)
