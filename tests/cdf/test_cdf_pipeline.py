"""Behavioural tests for the CDF pipeline against the baseline."""

import random

import pytest

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.isa import ProgramBuilder, execute

IDX_BASE = 1 << 24
BIG_BASE = 1 << 26
N = 1 << 14


def astar_like(iters=900, filler=20, seed=7):
    """Random-index load missing the LLC, inside a fat loop body."""
    rng = random.Random(seed)
    mem = {IDX_BASE + i * 8: rng.randrange(1 << 20) for i in range(N)}
    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, IDX_BASE)
    b.movi(3, BIG_BASE)
    b.movi(4, 0)
    b.label("loop")
    b.load(5, base=2, index=4, scale=8)      # idx = index[i]
    b.load(6, base=3, index=5, scale=8)      # big[idx]: LLC miss
    b.add(7, 7, 6)
    for _ in range(filler):                  # non-critical work
        b.add(8, 8, imm=3)
        b.mul(9, 8, imm=5)
        b.add(10, 9, imm=1)
    b.add(4, 4, imm=1)
    b.and_(4, 4, imm=N - 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    program = b.build()
    trace = execute(program, mem, max_uops=500_000)
    return program, trace


@pytest.fixture(scope="module")
def astar_runs():
    program, trace = astar_like()
    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    cdf_pipe = CDFPipeline(trace, SimConfig.with_cdf(), program)
    cdf = cdf_pipe.run()
    return program, trace, base, cdf, cdf_pipe


def test_requires_cdf_enabled_config():
    program, trace = astar_like(iters=5)
    with pytest.raises(ValueError):
        CDFPipeline(trace, SimConfig.baseline(), program)


def test_all_uops_retire_exactly_once(astar_runs):
    _, trace, _, cdf, _ = astar_runs
    assert cdf.retired_uops == len(trace)


def test_cdf_mode_engages(astar_runs):
    _, _, _, cdf, _ = astar_runs
    assert cdf.counters["cdf_mode_entries"] > 0
    assert cdf.counters["cdf_mode_cycles"] > cdf.cycles * 0.2
    assert cdf.counters["crit_fetch_uops"] > 0
    assert cdf.counters["fill_applied"] > 0


def test_cdf_improves_mlp_and_ipc(astar_runs):
    _, _, base, cdf, _ = astar_runs
    assert cdf.mlp > base.mlp * 1.3
    assert cdf.ipc > base.ipc * 1.05


def test_every_critical_uop_is_replayed(astar_runs):
    _, _, _, cdf, pipe = astar_runs
    # Fetched-critically uops are either replayed or flushed; at the end
    # nothing may linger.
    assert not pipe.critically_fetched
    assert len(pipe.cmq) == 0
    flushed = cdf.counters["violation_flushed_uops"]
    assert cdf.counters["crit_rename_uops"] == \
        cdf.counters["replayed_uops"] + flushed


def test_single_path_loop_has_no_violations(astar_runs):
    _, _, _, cdf, _ = astar_runs
    assert cdf.counters["dependence_violations"] == 0


def test_dbq_never_mismatches(astar_runs):
    _, _, _, cdf, _ = astar_runs
    assert cdf.counters["dbq_mismatches"] == 0


def test_no_extra_memory_traffic_on_clean_loop(astar_runs):
    _, _, base, cdf, _ = astar_runs
    # CDF fetches real critical loads only: traffic within 2% of baseline.
    assert cdf.total_traffic <= base.total_traffic * 1.02


def test_deterministic(astar_runs):
    program, trace, _, cdf, _ = astar_runs
    again = CDFPipeline(trace, SimConfig.with_cdf(), program).run()
    assert again.cycles == cdf.cycles
    assert dict(again.counters) == dict(cdf.counters)


def test_partition_grows_critical_section(astar_runs):
    _, _, _, _, pipe = astar_runs
    # The miss-bound loop should push the critical ROB share up.
    assert pipe.partitions.rob.grows > 0


def test_branch_prediction_trained_once_per_branch(astar_runs):
    _, trace, base, cdf, _ = astar_runs
    n_branches = sum(1 for u in trace if u.is_branch)
    assert cdf.counters["bpred_accesses"] == n_branches
    assert base.counters["bpred_accesses"] == n_branches


def control_flow_violation_workload():
    """Fig. 12 scenario: the critical load's producer differs per path,
    and one path is rare - its producer is missing from the mask."""
    rng = random.Random(3)
    mem = {IDX_BASE + i * 8: rng.randrange(1 << 20) for i in range(N)}
    # bias[i]: mostly 0 (common path), rarely 1 (rare path)
    for i in range(N):
        mem[(1 << 22) + i * 8] = 1 if rng.random() < 0.02 else 0
    b = ProgramBuilder()
    b.movi(1, 2500)
    b.movi(2, IDX_BASE)
    b.movi(3, BIG_BASE)
    b.movi(4, 0)
    b.movi(11, 1 << 22)
    b.label("loop")
    b.load(12, base=11, index=4, scale=8)    # path selector
    b.load(5, base=2, index=4, scale=8)      # common-path index
    b.beqz(12, "common")
    b.add(5, 5, imm=8)                       # rare path: perturb the index
    b.label("common")
    b.load(6, base=3, index=5, scale=8)      # critical load
    b.add(7, 7, 6)
    for _ in range(12):
        b.add(8, 8, imm=3)
        b.mul(9, 8, imm=5)
    b.add(4, 4, imm=1)
    b.and_(4, 4, imm=N - 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    program = b.build()
    trace = execute(program, mem, max_uops=500_000)
    return program, trace


def test_rare_path_violations_are_detected_and_survived():
    program, trace = control_flow_violation_workload()
    pipe = CDFPipeline(trace, SimConfig.with_cdf(), program)
    result = pipe.run()
    # Everything still retires correctly despite control-flow surprises.
    assert result.retired_uops == len(trace)
    # The mask-accumulation mechanism keeps violations rare relative to
    # critical fetches, exactly the paper's claim.
    violations = result.counters["dependence_violations"]
    if violations:
        assert violations < result.counters["crit_fetch_uops"] * 0.05


def test_density_gate_blocks_all_critical_workload():
    """A pure pointer chase where ~everything is critical: the >50%
    density gate must keep CDF out (no benefit possible)."""
    rng = random.Random(1)
    # singly linked random list
    order = list(range(2048))
    rng.shuffle(order)
    mem = {}
    base_addr = 1 << 26
    for a, b_ in zip(order, order[1:] + order[:1]):
        mem[base_addr + a * 64] = base_addr + b_ * 64
    b = ProgramBuilder()
    b.movi(1, 4000)
    b.movi(2, base_addr + order[0] * 64)
    b.label("loop")
    b.load(2, base=2)          # p = *p  (the whole loop is the chain)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    program = b.build()
    trace = execute(program, mem, max_uops=200_000)
    result = CDFPipeline(trace, SimConfig.with_cdf(), program).run()
    assert result.counters["fill_rejected"] > 0
    assert result.counters["cdf_mode_entries"] == 0


def test_warmup_region_reporting():
    program, trace = astar_like(iters=600)
    cfg = SimConfig.with_cdf()
    cfg.stats_warmup_uops = len(trace) // 3
    result = CDFPipeline(trace, cfg, program).run()
    assert result.retired_uops < len(trace)
    assert result.ipc > 0
