"""Unit tests for the Fill Buffer backwards dataflow walk.

The running example mirrors the paper's Fig. 5: a loop whose critical
load's chain must be discovered by walking register and memory
dependences backwards from the root.
"""

import pytest

from repro.cdf import FillBuffer, FillBufferEntry


def entry(seq, pc, bb=0, dst=None, srcs=(), mem=None, load=False,
          store=False, branch=False, root=False):
    return FillBufferEntry(seq=seq, pc=pc, bb_start=bb, dst=dst, srcs=srcs,
                           mem_addr=mem, is_load=load, is_store=store,
                           is_branch=branch, root_critical=root)


def test_capacity_validation():
    with pytest.raises(ValueError):
        FillBuffer(0)


def test_fifo_keeps_last_capacity_entries():
    fb = FillBuffer(4)
    for i in range(10):
        fb.record(entry(i, i))
    assert len(fb) == 4
    result = fb.walk()
    assert result.total == 4


def test_root_marks_its_register_chain():
    # I0: r0 <- r0 - 1      (critical: feeds address)
    # I1: r4 <- r4 + 1      (non-critical)
    # I2: r1 <- [r3 + r0]   (root critical load)
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=0, srcs=(0,)))
    fb.record(entry(1, 1, dst=4, srcs=(4,)))
    fb.record(entry(2, 2, dst=1, srcs=(3, 0), mem=100, load=True, root=True))
    result = fb.walk()
    assert result.critical_flags == [True, False, True]
    assert result.marked == 2


def test_memory_dependence_marks_store_and_its_chain():
    # I0: r5 <- r6 + 1
    # I1: [200] <- r5      (store feeding the critical load)
    # I2: r1 <- [200]      (root critical load)
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=5, srcs=(6,)))
    fb.record(entry(1, 1, dst=None, srcs=(5, 2), mem=200, store=True))
    fb.record(entry(2, 2, dst=1, srcs=(2,), mem=200, load=True, root=True))
    result = fb.walk()
    assert result.critical_flags == [True, True, True]


def test_unrelated_store_not_marked():
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=None, srcs=(5,), mem=300, store=True))
    fb.record(entry(1, 1, dst=1, srcs=(2,), mem=200, load=True, root=True))
    result = fb.walk()
    assert result.critical_flags == [False, True]


def test_dst_overwrite_cuts_the_chain():
    # Walking backwards: the younger write to r0 satisfies the need; the
    # older producer of r0 must NOT be marked.
    # I0: r0 <- r9 + 1     (older producer; overwritten before use)
    # I1: r0 <- r8 + 1     (actual producer)
    # I2: r1 <- [r0]       (root)
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=0, srcs=(9,)))
    fb.record(entry(1, 1, dst=0, srcs=(8,)))
    fb.record(entry(2, 2, dst=1, srcs=(0,), mem=100, load=True, root=True))
    result = fb.walk()
    assert result.critical_flags == [False, True, True]


def test_multiple_roots_union_their_chains():
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=1, srcs=()))                      # feeds root A
    fb.record(entry(1, 1, dst=2, srcs=()))                      # feeds root B
    fb.record(entry(2, 2, dst=3, srcs=(1,), mem=8, load=True, root=True))
    fb.record(entry(3, 3, dst=4, srcs=(2,), mem=16, load=True, root=True))
    result = fb.walk()
    assert result.critical_flags == [True, True, True, True]


def test_bb_masks_have_bits_at_block_offsets():
    # Two uops in block starting at pc 10; only the second is critical.
    fb = FillBuffer(8)
    fb.record(entry(0, 10, bb=10, dst=7, srcs=()))
    fb.record(entry(1, 11, bb=10, dst=1, srcs=(3,), mem=8, load=True,
                    root=True))
    result = fb.walk()
    assert result.bb_masks[10] == 0b10


def test_prior_masks_accumulate_other_paths():
    # The uop at pc 5 is not on this walk's chain, but a prior mask says
    # it was critical on another path: it must stay marked.
    fb = FillBuffer(8)
    fb.record(entry(0, 5, bb=5, dst=9, srcs=(9,)))
    fb.record(entry(1, 6, bb=5, dst=1, srcs=(3,), mem=8, load=True,
                    root=True))
    result = fb.walk(prior_masks={5: 0b01})
    assert result.critical_flags == [True, True]
    assert result.bb_masks[5] == 0b11


def test_prior_marked_uop_propagates_its_sources():
    # Pre-marking I1 (via prior mask) must pull I0 into the chain.
    fb = FillBuffer(8)
    fb.record(entry(0, 4, bb=4, dst=2, srcs=()))
    fb.record(entry(1, 5, bb=4, dst=3, srcs=(2,)))
    result = fb.walk(prior_masks={4: 0b10})
    assert result.critical_flags == [True, True]


def test_branch_root_marks_condition_chain():
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=1, srcs=(1,)))               # condition chain
    fb.record(entry(1, 1, srcs=(1,), branch=True, root=True))
    result = fb.walk()
    assert result.critical_flags == [True, True]
    assert result.bb_ends_in_branch[0] is True


def test_masks_support_blocks_longer_than_64_uops():
    fb = FillBuffer(256)
    # 70 uops in one block; the last one is a critical root.
    for i in range(70):
        fb.record(entry(i, i, bb=0, dst=1, srcs=(1,) if i else ()))
    fb.record(entry(70, 70, bb=0, dst=2, srcs=(1,), mem=8, load=True,
                    root=True))
    result = fb.walk()
    assert result.critical_flags[-1]
    assert result.bb_masks[0] >> 70 & 1
    assert result.bb_masks[0] >> 69 & 1   # chain through r1


def test_critical_fraction():
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=9, srcs=()))
    fb.record(entry(1, 1, dst=1, srcs=(3,), mem=8, load=True, root=True))
    result = fb.walk()
    assert result.critical_fraction == pytest.approx(0.5)


def test_clear():
    fb = FillBuffer(8)
    fb.record(entry(0, 0, dst=1, srcs=()))
    fb.clear()
    assert len(fb) == 0
    assert not fb.full
