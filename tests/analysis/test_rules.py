"""Fixture snippets for every simlint rule: positive, suppressed, and
allowlisted/clean variants, plus framework-level behaviors (baseline,
reporters, suppression parsing)."""

import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    Baseline,
    lint_source,
    parse_suppressions,
    rule_by_id,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import LintReport


def findings(rule_id, source, module="repro.core.snippet"):
    rule = rule_by_id(rule_id)
    found, _ = lint_source(textwrap.dedent(source), rules=[rule],
                           module=module)
    return found


def suppressed_count(rule_id, source, module="repro.core.snippet"):
    rule = rule_by_id(rule_id)
    found, hidden = lint_source(textwrap.dedent(source), rules=[rule],
                                module=module)
    assert not found
    return hidden


# ------------------------------------------------------------------ DET001
def test_det001_flags_global_random():
    hits = findings("DET001", """
        import random
        value = random.randrange(10)
    """)
    assert len(hits) == 1 and hits[0].rule == "DET001"


def test_det001_flags_from_import():
    hits = findings("DET001", "from random import shuffle, randrange\n")
    assert len(hits) == 1
    assert "shuffle" in hits[0].message


def test_det001_flags_numpy_global_rng():
    hits = findings("DET001", """
        import numpy as np
        x = np.random.rand(4)
    """)
    assert len(hits) == 1


def test_det001_allows_seeded_generators():
    assert not findings("DET001", """
        import random
        import numpy as np
        rng = random.Random(42)
        gen = np.random.default_rng(42)
        value = rng.randrange(10)
    """)


def test_det001_suppressed_inline():
    assert suppressed_count("DET001", """
        import random
        value = random.random()  # simlint: disable=DET001 demo only
    """) == 1


# ------------------------------------------------------------------ DET002
def test_det002_flags_for_over_set_call():
    hits = findings("DET002", """
        def f(xs):
            for x in set(xs):
                print(x)
    """)
    assert len(hits) == 1


def test_det002_flags_comprehension_and_literal():
    hits = findings("DET002", """
        def f(xs):
            out = [x for x in {1, 2, 3}]
            for y in {x * 2 for x in xs}:
                out.append(y)
            return out
    """)
    assert len(hits) == 2


def test_det002_flags_order_leaky_wrappers():
    hits = findings("DET002", """
        def f(xs):
            return list(set(xs)), ", ".join({str(x) for x in xs})
    """)
    assert len(hits) == 2


def test_det002_allows_sorted_and_reductions():
    assert not findings("DET002", """
        def f(xs):
            for x in sorted(set(xs)):
                print(x)
            for y in dict.fromkeys(xs):
                print(y)
            return len(set(xs)) + sum(set(xs)) + max(set(xs))
    """)


def test_det002_suppressed_next_line():
    assert suppressed_count("DET002", """
        def f(xs):
            # simlint: disable-next=DET002 order provably irrelevant here
            for x in set(xs):
                print(x)
    """) == 1


# ------------------------------------------------------------------ DET003
def test_det003_flags_wall_clock_in_simulator_module():
    hits = findings("DET003", """
        import time
        def step():
            return time.perf_counter()
    """, module="repro.core.pipeline")
    assert len(hits) == 1


def test_det003_flags_from_import_and_datetime():
    hits = findings("DET003", """
        from time import monotonic
        import datetime
        stamp = datetime.datetime.now()
    """, module="repro.cdf.cct")
    assert len(hits) == 2


def test_det003_allowlists_harness_telemetry():
    source = """
        import time
        start = time.perf_counter()
    """
    assert not findings("DET003", source, module="repro.harness.engine")
    assert not findings("DET003", source, module="repro.harness.report")
    assert findings("DET003", source, module="repro.memory.dram")


def test_det003_suppressed():
    assert suppressed_count("DET003", """
        import time
        def log():
            return time.time()  # simlint: disable=DET003 debug logging
    """, module="repro.core.pipeline") == 1


# ------------------------------------------------------------------ CFG001
def test_cfg001_flags_param_mutation():
    hits = findings("CFG001", """
        def tweak(config):
            config.core.rob_size = 128
    """)
    assert len(hits) == 1
    assert "caller-supplied" in hits[0].message


def test_cfg001_flags_annotated_param():
    hits = findings("CFG001", """
        def tweak(options: SimConfig):
            options.max_cycles = 10
    """)
    assert len(hits) == 1


def test_cfg001_allows_rebound_copy():
    assert not findings("CFG001", """
        import copy
        def run(config):
            config = copy.deepcopy(config)
            config.stats_warmup_uops = 5
            return config
    """)


def test_cfg001_allows_locally_built_config():
    assert not findings("CFG001", """
        def make():
            config = config_for_mode("cdf")
            config.core.rob_size = 128
            return config
    """)


def test_cfg001_suppressed():
    assert suppressed_count("CFG001", """
        def knob(config, value):
            config.llc.mshrs = value  # simlint: disable=CFG001 knob contract
    """) == 1


# ------------------------------------------------------------------ STAT001
def test_stat001_flags_undeclared_bump_key():
    hits = findings("STAT001", """
        def f(self):
            self.counters.bump("fetch_uop")
    """)
    assert len(hits) == 1
    assert "fetch_uop" in hits[0].message


def test_stat001_flags_undeclared_subscript_key():
    hits = findings("STAT001", """
        def f(counters):
            counters["branch_mispredict"] = 3
            return counters["llc_mis_loads"]
    """)
    assert len(hits) == 2


def test_stat001_flags_unknown_fstring_template():
    hits = findings("STAT001", """
        def f(self, reason):
            self.counters.bump(f"mystery_{reason}_events")
    """)
    assert len(hits) == 1


def test_stat001_allows_registered_keys():
    assert not findings("STAT001", """
        def f(self, reason, weight):
            self.counters.bump("fetch_uops")
            self.counters.bump(f"dispatch_stall_{reason}_cycles", weight)
            self.counters["branch_mispredicts"] = 7
    """)


def test_stat001_allows_registered_verify_counters():
    assert not findings("STAT001", """
        def f(self):
            self.counters.bump("verify_retired_uops")
            self.counters.bump("verify_oracle_uops")
            self.counters.bump("verify_structural_scans")
    """)


def test_stat001_flags_undeclared_verify_counter():
    hits = findings("STAT001", """
        def f(self):
            self.counters.bump("verify_bogus_checks")
    """)
    assert len(hits) == 1
    assert "verify_bogus_checks" in hits[0].message


def test_stat001_allows_registered_service_counters():
    assert not findings("STAT001", """
        def f(self):
            self.counters.bump("service_requeues")
            self.counters.bump("service_retries")
            self.counters.bump("service_heartbeats_missed")
            self.counters.bump("service_journal_replays")
            self.counters.bump("service_worker_deaths")
    """)


def test_stat001_flags_undeclared_service_counter():
    hits = findings("STAT001", """
        def f(self):
            self.counters.bump("service_requeuez")
    """)
    assert len(hits) == 1
    assert "service_requeuez" in hits[0].message


def test_stat001_allows_registered_sched_counters():
    assert not findings("STAT001", """
        def f(self):
            self.counters.bump("sched_events_scheduled")
            self.counters.bump("sched_wakeups_scheduled")
            self.counters.bump("sched_wakeups_coalesced")
            self.counters.bump("sched_stage_skips")
            self.counters.bump("sched_idle_jumps")
            self.counters.bump("sched_subclass_wakeups")
    """)


def test_stat001_flags_undeclared_sched_counter():
    hits = findings("STAT001", """
        def f(self):
            self.counters.bump("sched_stage_skipz")
    """)
    assert len(hits) == 1
    assert "sched_stage_skipz" in hits[0].message


def test_stat001_suppressed():
    assert suppressed_count("STAT001", """
        def f(self):
            self.counters.bump("experimental_key")  # simlint: disable=STAT001 staging
    """) == 1


# ------------------------------------------------------------------ NUM001
def test_num001_flags_division_into_bump():
    hits = findings("NUM001", """
        def f(self, cycles):
            self.counters.bump("cdf_mode_cycles", cycles / 2)
    """)
    assert len(hits) == 1


def test_num001_flags_float_literal_assignment():
    hits = findings("NUM001", """
        def f(counters):
            counters["llc_accesses"] = 0.5
    """)
    assert len(hits) == 1


def test_num001_allows_integer_math_and_int_cast():
    assert not findings("NUM001", """
        def f(self, cycles, ratio):
            self.counters.bump("cdf_mode_cycles", cycles // 2)
            self.counters.bump("fetch_uops", int(cycles * ratio))
    """)


def test_num001_suppressed():
    assert suppressed_count("NUM001", """
        def f(self, cycles):
            self.counters.bump("cdf_mode_cycles", cycles / 2)  # simlint: disable=NUM001 known exact
    """) == 1


# ------------------------------------------------------------------ ARCH001
def test_arch001_flags_upward_import():
    hits = findings("ARCH001", "from repro.harness import run_benchmark\n",
                    module="repro.isa.program")
    assert len(hits) == 1
    assert "repro.isa" in hits[0].message


def test_arch001_flags_relative_upward_import():
    hits = findings("ARCH001", "from ..cdf import CDFPipeline\n",
                    module="repro.memory.cache")
    assert len(hits) == 1


def test_arch001_allows_downward_import():
    assert not findings("ARCH001", """
        from ..config import SimConfig
        from ..isa.dynuop import DynUop
    """, module="repro.core.pipeline")


def test_arch001_harness_may_import_anything():
    assert not findings("ARCH001", """
        from ..cdf import CDFPipeline
        from ..workloads import SUITE
    """, module="repro.harness.runner")


def test_arch001_suppressed():
    assert suppressed_count(
        "ARCH001",
        "from repro.cdf import CDFPipeline  # simlint: disable=ARCH001 migration\n",
        module="repro.memory.cache") == 1


# ------------------------------------------------------------------ API001
def test_api001_flags_mutable_defaults():
    hits = findings("API001", """
        def f(xs=[], mapping={}, tags=set()):
            return xs, mapping, tags
    """)
    assert len(hits) == 3


def test_api001_flags_kwonly_constructor_default():
    hits = findings("API001", """
        def f(*, counters=Counters()):
            return counters
    """)
    assert len(hits) == 1


def test_api001_allows_none_and_immutables():
    assert not findings("API001", """
        def f(xs=None, n=3, name="x", pair=(1, 2)):
            xs = list(xs or ())
            return xs, n, name, pair
    """)


def test_api001_suppressed():
    assert suppressed_count("API001", """
        def f(cache={}):  # simlint: disable=API001 intentional memo
            return cache
    """) == 1


# --------------------------------------------------------------- framework
def test_disable_all_silences_every_rule():
    source = textwrap.dedent("""
        def f(xs):
            for x in set(xs):  # simlint: disable=all generated code
                print(x)
    """)
    found, hidden = lint_source(source)
    assert not found
    assert hidden >= 1


def test_disable_file_directive():
    source = textwrap.dedent("""
        # simlint: disable-file=DET002 trace dump helper, order-free
        def f(xs):
            for x in set(xs):
                print(x)
            return list(set(xs))
    """)
    found, hidden = lint_source(source, rules=[rule_by_id("DET002")])
    assert not found
    assert hidden == 2


def test_multiline_statement_suppression_on_any_line():
    source = textwrap.dedent("""
        def f(self):
            self.counters.bump(
                "experimental_key")  # simlint: disable=STAT001 staging
    """)
    found, hidden = lint_source(source, rules=[rule_by_id("STAT001")])
    assert not found and hidden == 1


def test_parse_suppressions_directives():
    supp = parse_suppressions([
        "x = 1  # simlint: disable=DET001,DET002 reason text",
        "# simlint: disable-next=CFG001",
        "y = 2",
        "# simlint: disable-file=API001 whole file",
    ])
    assert supp.is_suppressed("DET001", 1, 1)
    assert supp.is_suppressed("DET002", 1, 1)
    assert not supp.is_suppressed("DET003", 1, 1)
    assert supp.is_suppressed("CFG001", 3, 3)
    assert supp.is_suppressed("API001", 99, 99)


def test_rule_catalogue_is_documented():
    ids = [rule.id for rule in ALL_RULES]
    assert ids == sorted(ids) or len(set(ids)) == len(ids)
    for rule in ALL_RULES:
        assert rule.rationale, f"{rule.id} missing rationale"
        assert rule.name, f"{rule.id} missing name"
    with pytest.raises(KeyError):
        rule_by_id("NOPE999")


def test_baseline_grandfathers_then_catches_new(tmp_path):
    source = textwrap.dedent("""
        def f(xs):
            for x in set(xs):
                print(x)
    """)
    found, _ = lint_source(source, rules=[rule_by_id("DET002")])
    baseline = Baseline.from_findings(found)
    # same findings again: fully grandfathered
    again, _ = lint_source(source, rules=[rule_by_id("DET002")])
    new, grandfathered, stale = baseline.filter(again)
    assert not new and grandfathered == 1 and not stale
    # a second violation appears: only the new one fires
    source2 = source + "    for y in set(xs):\n        print(y)\n"
    more, _ = lint_source(source2, rules=[rule_by_id("DET002")])
    new, grandfathered, stale = baseline.filter(more)
    assert len(new) == 1 and grandfathered == 1
    # violation removed: baseline entry is reported stale
    clean, _ = lint_source("def f():\n    return 1\n",
                           rules=[rule_by_id("DET002")])
    new, grandfathered, stale = baseline.filter(clean)
    assert not new and not grandfathered and len(stale) == 1
    # round-trips through disk
    path = tmp_path / "baseline.json"
    baseline.dump(path)
    assert Baseline.load(path).counts == baseline.counts


def test_reporters_render_findings():
    source = "def f(xs):\n    return list(set(xs))\n"
    found, _ = lint_source(source, rules=[rule_by_id("DET002")])
    report = LintReport(findings=found, files_checked=1)
    text = render_text(report, verbose=True)
    assert "DET002" in text and "FAIL" in text
    clean = LintReport(files_checked=1)
    assert "OK" in render_text(clean)
    import json
    payload = json.loads(render_json(report))
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "DET002"
