"""Tier-1 gate: the repo's own source must be simlint-clean.

Runs every rule over the installed ``repro`` package with an **empty
baseline** — any new finding fails CI.  Accepted exceptions must carry an
inline ``# simlint: disable=RULE <reason>`` comment, which keeps them
visible at the violation site instead of hidden in a baseline file.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths
from repro.analysis.report import render_text
from repro.cli import main as cli_main


def _package_root() -> Path:
    return Path(repro.__file__).parent


def test_repo_is_lint_clean_with_empty_baseline():
    report = lint_paths([_package_root()])
    assert report.files_checked > 50, "lint walked suspiciously few files"
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, "\n" + render_text(report, verbose=True)


def test_suppressions_remain_rare_and_visible():
    # Inline suppressions are allowed but counted; if this number creeps
    # up, findings are being silenced instead of fixed.  Raise it only
    # with a justification in the PR.
    #
    # Current budget: 3× CFG001 (sweep.py knob contract) plus 8× CONC001
    # on deliberate per-process memoization — the workload LRU, the
    # code/trace salt digests, the trace-store handle, and the counter-
    # registry warn-once memo.  Each is a pure function of code/env, so
    # sharing a worker process cannot change any result; each site
    # carries its own one-line justification.
    report = lint_paths([_package_root()])
    assert report.suppressed <= 12, (
        f"{report.suppressed} inline suppressions in src/repro — "
        f"fix findings instead of suppressing them")


def test_no_unused_suppressions_in_repo():
    # Every directive must still be load-bearing; stale ones rot into
    # misleading documentation.  The runner reports them as warnings —
    # this test turns the warning into a tier-1 failure for our own tree.
    report = lint_paths([_package_root()])
    assert not report.unused_suppressions, "\n".join(
        u.render() for u in report.unused_suppressions)


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert cli_main(["lint", str(_package_root())]) == 0
    out = capsys.readouterr().out
    assert "simlint: OK" in out


def test_cli_lint_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n"
                   "def f(xs):\n"
                   "    for x in set(xs):\n"
                   "        yield x + random.random()\n")
    assert cli_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET002" in out and "FAIL" in out


def test_cli_lint_json_and_select(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs):\n    return list(set(xs))\n")
    assert cli_main(["lint", "--format", "json", "--select", "DET002",
                     str(bad)]) == 1
    out = capsys.readouterr().out
    assert '"rule": "DET002"' in out
    # selecting a rule the file doesn't violate exits clean
    assert cli_main(["lint", "--select", "API001", str(bad)]) == 0


def test_cli_lint_baseline_workflow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs):\n    return list(set(xs))\n")
    baseline = tmp_path / "baseline.json"
    assert cli_main(["lint", "--baseline", str(baseline),
                     "--write-baseline", str(bad)]) == 0
    capsys.readouterr()
    # grandfathered: exits 0
    assert cli_main(["lint", "--baseline", str(baseline), str(bad)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # a new violation still fails
    bad.write_text("def f(xs):\n"
                   "    return list(set(xs)), tuple(set(xs))\n")
    assert cli_main(["lint", "--baseline", str(baseline), str(bad)]) == 1


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "CFG001", "STAT001",
                    "NUM001", "ARCH001", "API001",
                    # dataflow tier (simlint v2)
                    "PUR001", "TIME001", "CONC001", "GRD001", "API002"):
        assert rule_id in out
