"""Mutation fixtures for the dataflow-tier rules.

Each rule gets (a) a positive fixture reproducing its historical bug
class — the PR 3 rebalance overflow for GRD001, the PR 5
writeback-at-cycle-0 for TIME001, the level-0 observer mutation for
PUR001 — and (b) clean variants proving the repo's idioms (early-return
guards, gate-derived locals, min/max clamps, share transfers) are not
flagged.
"""

import textwrap

from repro.analysis import lint_source, rule_by_id


def findings(rule_id, source, module="repro.core.snippet"):
    rule = rule_by_id(rule_id)
    found, _ = lint_source(textwrap.dedent(source), rules=[rule],
                           module=module)
    return found


def suppressed_count(rule_id, source, module="repro.core.snippet"):
    rule = rule_by_id(rule_id)
    found, hidden = lint_source(textwrap.dedent(source), rules=[rule],
                                module=module)
    assert not found
    return hidden


# ------------------------------------------------------------------ PUR001
def test_pur001_flags_unguarded_observer_use():
    hits = findings("PUR001", """
        class Core:
            def tick(self, cycle):
                self.observer.on_cycle_end(cycle)
    """)
    assert len(hits) == 1 and hits[0].rule == "PUR001"


def test_pur001_accepts_none_guard():
    assert not findings("PUR001", """
        class Core:
            def tick(self, cycle):
                if self.observer is not None:
                    self.observer.on_cycle_end(cycle)
    """)


def test_pur001_accepts_early_return_guard():
    assert not findings("PUR001", """
        class Core:
            def tick(self, cycle):
                if self.observer is None:
                    return
                self.observer.on_cycle_end(cycle)
    """)


def test_pur001_accepts_obs_level_gate():
    assert not findings("PUR001", """
        class Core:
            def tick(self, cycle):
                if self.obs_level >= 1:
                    self.observer.on_cycle_end(cycle)
    """)


def test_pur001_flags_use_through_local_alias():
    hits = findings("PUR001", """
        class Core:
            def tick(self, cycle):
                obs = self.observer
                obs.on_cycle_end(cycle)
    """)
    assert len(hits) == 1


def test_pur001_accepts_guarded_alias():
    assert not findings("PUR001", """
        class Core:
            def tick(self, cycle):
                obs = self.observer
                if obs is not None:
                    obs.on_cycle_end(cycle)
    """)


def test_pur001_exempts_observability_modules():
    assert not findings("PUR001", """
        class Report:
            def render(self):
                return self.observer.event_log
    """, module="repro.obs.report")


def test_pur001_suppressed_inline():
    assert suppressed_count("PUR001", """
        class Core:
            def tick(self, cycle):
                self.observer.on_cycle_end(cycle)  # simlint: disable=PUR001 demo
    """) == 1


# ------------------------------------------------------------------ TIME001
def test_time001_flags_writeback_at_cycle_zero():
    # PR 5's actual bug: victim writebacks issued at timestamp 0.
    hits = findings("TIME001", """
        class Hierarchy:
            def evict(self, victim):
                self.dram.access(0, victim, source="writeback")
    """)
    assert len(hits) == 1 and hits[0].rule == "TIME001"


def test_time001_accepts_cycle_derived_timestamp():
    assert not findings("TIME001", """
        class Hierarchy:
            def evict(self, cycle, victim):
                self.dram.access(cycle + 1, victim, source="writeback")
    """)


def test_time001_flags_stale_local_into_event_queue():
    hits = findings("TIME001", """
        import heapq

        class Sched:
            def push(self, item):
                when = 0
                heapq.heappush(self.events, (when, item))
    """)
    assert len(hits) == 1


def test_time001_accepts_cycleish_heap_timestamp():
    assert not findings("TIME001", """
        import heapq

        class Sched:
            def push(self, cycle, item):
                ready_cycle = cycle + self.latency
                heapq.heappush(self.events, (ready_cycle, item))
    """)


def test_time001_flags_literal_into_wakeup_heap():
    # Wakeup-heap entries are bare cycle numbers, not tuples; a literal
    # or literal-only local must be flagged exactly as for the event
    # queue.
    hits = findings("TIME001", """
        import heapq

        class Sched:
            def park(self):
                heapq.heappush(self.wakeups, 0)
    """)
    assert len(hits) == 1


def test_time001_accepts_cycle_derived_wakeup():
    assert not findings("TIME001", """
        import heapq

        class Sched:
            def park(self, cycle):
                resume_cycle = cycle + self.penalty
                heapq.heappush(self.wakeups, resume_cycle)
    """)


def test_time001_flags_stale_local_into_schedule_wakeup():
    hits = findings("TIME001", """
        class Timer:
            def arm(self):
                when = 0
                self._schedule_wakeup(when)
    """)
    assert len(hits) == 1


def test_time001_accepts_cycle_derived_schedule_wakeup():
    assert not findings("TIME001", """
        class Timer:
            def arm(self, cycle):
                self._schedule_wakeup(cycle + self.interval)
    """)


def test_time001_sees_through_method_alias():
    hits = findings("TIME001", """
        class Core:
            def fetch(self, line):
                ifetch = self.mem.ifetch
                ifetch(0, line)
    """)
    assert len(hits) == 1


def test_time001_exempts_harness_modules():
    assert not findings("TIME001", """
        class Replay:
            def seed(self, victim):
                self.dram.access(0, victim)
    """, module="repro.harness.replay")


# ------------------------------------------------------------------ GRD001
def test_grd001_flags_unclamped_partition_growth():
    # PR 3's actual bug: rebalance grew critical_size past its bound.
    hits = findings("GRD001", """
        class Partition:
            def rebalance(self):
                self.critical_size += self.step
    """)
    assert len(hits) == 1 and hits[0].rule == "GRD001"
    assert "critical_size" in hits[0].message


def test_grd001_accepts_minmax_clamped_growth():
    assert not findings("GRD001", """
        class Partition:
            def rebalance(self):
                new_size = min(self.total - self.min_noncritical,
                               self.critical_size + self.step)
                change = new_size - self.critical_size
                self.critical_size += change
    """)


def test_grd001_accepts_capacity_guarded_append():
    assert not findings("GRD001", """
        class Fifo:
            def push(self, item):
                if self.full:
                    raise OverflowError("fifo overflow")
                self._q.append(item)
    """)


def test_grd001_flags_unguarded_fifo_append():
    hits = findings("GRD001", """
        class Fifo:
            def push_unchecked(self, item):
                self._q.append(item)
    """)
    assert len(hits) == 1


def test_grd001_accepts_share_transfer():
    # paired += / -= in the same block moves occupancy, net zero
    assert not findings("GRD001", """
        class Partition:
            def hand_off(self, count):
                self.critical_size += count
                self.noncritical_size -= count
    """)


def test_grd001_accepts_gate_derived_break():
    assert not findings("GRD001", """
        class Pipe:
            def dispatch(self, uops, cycle):
                for uop in uops:
                    reason = self._allocation_block_reason(uop)
                    if reason is not None:
                        break
                    self.rob.append(uop)
    """)


def test_grd001_allocator_excused_when_all_callers_gated():
    assert not findings("GRD001", """
        class Pipe:
            def dispatch(self, uop):
                if self._allocation_block_reason(uop) is not None:
                    return False
                self._allocate(uop)
                return True

            def _allocate(self, uop):
                self.rob.append(uop)
    """)


def test_grd001_flags_ungated_allocator_caller():
    hits = findings("GRD001", """
        class Pipe:
            def dispatch(self, uop):
                if self._allocation_block_reason(uop) is not None:
                    return False
                self._allocate(uop)
                return True

            def sneak_in(self, uop):
                self._allocate(uop)

            def _allocate(self, uop):
                self.rob.append(uop)
    """)
    assert len(hits) == 1
    assert "sneak_in" in hits[0].message or "_allocate" in hits[0].message


def test_grd001_same_name_method_on_unrelated_class_not_conflated():
    # TAGE also has `_allocate`; its callers must not be dragged into
    # the pipeline allocator's caller set by the name-based call graph.
    assert not findings("GRD001", """
        class Pipe:
            def dispatch(self, uop):
                if self._allocation_block_reason(uop) is not None:
                    return False
                self._allocate(uop)

            def _allocate(self, uop):
                self.rob.append(uop)

        class Tage:
            def update(self, pc):
                self._allocate(pc)

            def _allocate(self, pc):
                self.table[pc] = 0
    """)


# ------------------------------------------------------------------ CONC001
def test_conc001_flags_worker_mutating_module_cache():
    hits = findings("CONC001", """
        _CACHE = {}

        def _run_sim_job(job):
            _CACHE[job.key] = job.payload
            return job.payload

        KINDS = {"sim": JobKind(execute=_run_sim_job)}
    """)
    assert len(hits) == 1 and hits[0].rule == "CONC001"
    assert "_CACHE" in hits[0].message


def test_conc001_flags_global_assignment_in_worker():
    hits = findings("CONC001", """
        _COUNT = 0

        def _run_sim_job(job):
            global _COUNT
            _COUNT += 1
            return job.payload

        KINDS = {"sim": JobKind(execute=_run_sim_job)}
    """)
    assert len(hits) == 1


def test_conc001_follows_the_call_graph():
    hits = findings("CONC001", """
        _SEEN = []

        def _record(job):
            _SEEN.append(job.key)

        def _run_sim_job(job):
            _record(job)
            return job.payload

        KINDS = {"sim": JobKind(execute=_run_sim_job)}
    """)
    assert len(hits) == 1


def test_conc001_flags_process_target_mutating_module_state():
    # The sweep service's worker entry point is discovered through the
    # multiprocessing.Process(target=...) keyword, same sharing rules
    # as a pool worker.
    hits = findings("CONC001", """
        import multiprocessing

        _RESULTS = {}

        def worker_main(worker_id, root):
            _RESULTS[worker_id] = root

        def spawn(slot):
            return multiprocessing.Process(
                target=worker_main, kwargs={"worker_id": slot,
                                            "root": "/tmp"})
    """)
    assert len(hits) == 1 and hits[0].rule == "CONC001"
    assert "_RESULTS" in hits[0].message


def test_conc001_allows_clean_process_target():
    assert not findings("CONC001", """
        import multiprocessing

        def worker_main(worker_id, root):
            return f"{worker_id}:{root}"

        def spawn(slot):
            return multiprocessing.Process(target=worker_main,
                                           args=(slot, "/tmp"))
    """)


def test_conc001_ignores_local_mutation_and_nonworker_globals():
    assert not findings("CONC001", """
        _CACHE = {}

        def warm_cache(key, value):
            _CACHE[key] = value

        def _run_sim_job(job):
            results = {}
            results[job.key] = job.payload
            return results

        KINDS = {"sim": JobKind(execute=_run_sim_job)}
    """)


def test_conc001_flags_class_attribute_store_in_worker():
    hits = findings("CONC001", """
        class Telemetry:
            last_job = None

        def _run_sim_job(job):
            Telemetry.last_job = job.key
            return job.payload

        KINDS = {"sim": JobKind(execute=_run_sim_job)}
    """)
    assert len(hits) == 1


def test_conc001_flags_lambda_in_job_payload():
    hits = findings("CONC001", """
        def launch(pool, work):
            return pool.submit(work, lambda: 3)
    """)
    assert len(hits) == 1
    assert "lambda" in hits[0].message


def test_conc001_discovers_submit_targets():
    hits = findings("CONC001", """
        _LOG = []

        def _execute(job):
            _LOG.append(job)

        def launch(pool, job):
            return pool.submit(_execute, job)
    """)
    assert len(hits) == 1


# ------------------------------------------------------------------ API002
def test_api002_flags_missing_hook_surface():
    hits = findings("API002", """
        class SparsePipeline:
            def run(self):
                return 0
    """)
    assert len(hits) == 1
    message = hits[0].message
    for method in ("attach_verifier", "attach_observer", "obs_gauges",
                   "_mode_name"):
        assert method in message


def test_api002_skips_class_with_unresolved_base():
    # partial-tree lint: the base lives outside the linted file set,
    # so the surface may be inherited from code we cannot see
    assert not findings("API002", """
        class CdfPipeline(BaselinePipeline):
            def run(self):
                return 1
    """)


def test_api002_accepts_surface_inherited_from_base():
    assert not findings("API002", """
        class BasePipeline:
            def attach_verifier(self, verifier):
                self.verifier = verifier

            def attach_observer(self, observer):
                self.observer = observer

            def obs_gauges(self):
                return {}

            def run(self):
                return 0

            def _mode_name(self):
                return "base"

        class CdfPipeline(BasePipeline):
            def run(self):
                return 1
    """)


def test_api002_flags_obs_gauges_override_dropping_base():
    hits = findings("API002", """
        class BasePipeline:
            def attach_verifier(self, verifier):
                self.verifier = verifier

            def attach_observer(self, observer):
                self.observer = observer

            def obs_gauges(self):
                return {}

            def run(self):
                return 0

            def _mode_name(self):
                return "base"

        class CdfPipeline(BasePipeline):
            def obs_gauges(self):
                return {"cdf.extra": 1}
    """)
    assert len(hits) == 1
    assert "obs_gauges" in hits[0].message


def test_api002_accepts_additive_obs_gauges_override():
    assert not findings("API002", """
        class BasePipeline:
            def attach_verifier(self, verifier):
                self.verifier = verifier

            def attach_observer(self, observer):
                self.observer = observer

            def obs_gauges(self):
                return {}

            def run(self):
                return 0

            def _mode_name(self):
                return "base"

        class CdfPipeline(BasePipeline):
            def obs_gauges(self):
                gauges = super().obs_gauges()
                gauges["cdf.extra"] = 1
                return gauges
    """)


def test_api002_checks_mode_name_against_registry():
    hits = findings("API002", """
        MODES = ("baseline", "cdf")

        class BasePipeline:
            def attach_verifier(self, verifier):
                self.verifier = verifier

            def attach_observer(self, observer):
                self.observer = observer

            def obs_gauges(self):
                return {}

            def run(self):
                return 0

            def _mode_name(self):
                return "experimental"
    """)
    assert len(hits) == 1
    assert "experimental" in hits[0].message


def test_api002_requires_literal_mode_name():
    hits = findings("API002", """
        class BasePipeline:
            def attach_verifier(self, verifier):
                self.verifier = verifier

            def attach_observer(self, observer):
                self.observer = observer

            def obs_gauges(self):
                return {}

            def run(self):
                return 0

            def _mode_name(self):
                return self.name
    """)
    assert len(hits) == 1
