"""simlint v2 runner features: unused-suppression warnings, --changed,
SARIF output, per-rule timings, and the --rule alias."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.rules import ALL_RULES
from repro.analysis.runner import changed_files, main


# ------------------------------------------------ unused suppressions
def test_unused_suppression_is_reported(tmp_path):
    source = tmp_path / "clean.py"
    source.write_text(
        "def f(xs):\n"
        "    return sorted(xs)  # simlint: disable=DET002 stale\n")
    report = lint_paths([source])
    assert not report.findings
    assert len(report.unused_suppressions) == 1
    unused = report.unused_suppressions[0]
    assert unused.line == 2 and unused.rules == ("DET002",)
    text = render_text(report)
    assert "unused suppression" in text
    assert "1 unused suppression(s)" in text
    payload = json.loads(render_json(report))
    assert payload["summary"]["unused_suppressions"] == 1


def test_live_suppression_is_not_reported(tmp_path):
    source = tmp_path / "hot.py"
    source.write_text(
        "def f(xs):\n"
        "    return [x for x in set(xs)]"
        "  # simlint: disable=DET002 demo\n")
    report = lint_paths([source])
    assert not report.findings and report.suppressed == 1
    assert not report.unused_suppressions


def test_partially_used_directive_reports_unused_rule_only(tmp_path):
    source = tmp_path / "partial.py"
    source.write_text(
        "def f(xs):\n"
        "    return [x for x in set(xs)]"
        "  # simlint: disable=DET002,DET001 demo\n")
    report = lint_paths([source])
    assert len(report.unused_suppressions) == 1
    assert report.unused_suppressions[0].rules == ("DET001",)


def test_unused_not_reported_for_rules_that_did_not_run(tmp_path):
    source = tmp_path / "clean.py"
    source.write_text(
        "def f(xs):\n"
        "    return sorted(xs)  # simlint: disable=DET002 stale\n")
    det001 = [r for r in ALL_RULES if r.id == "DET001"]
    report = lint_paths([source], rules=det001)
    assert not report.unused_suppressions


def test_docstring_directive_examples_are_not_live_directives():
    core = Path(__file__).resolve().parents[2] / "src" / "repro" / \
        "analysis" / "core.py"
    report = lint_paths([core])
    assert not report.unused_suppressions, [
        u.render() for u in report.unused_suppressions]


# ------------------------------------------------ timings
def test_per_rule_timings_recorded(tmp_path):
    source = tmp_path / "anything.py"
    source.write_text("x = 1\n")
    report = lint_paths([source])
    assert set(report.rule_seconds) == {r.id for r in ALL_RULES}
    assert all(seconds >= 0.0
               for seconds in report.rule_seconds.values())
    text = render_text(report, timings=True)
    assert "per-rule wall time" in text


# ------------------------------------------------ SARIF
def test_sarif_document_shape(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs):\n    return list(set(xs))\n")
    report = lint_paths([bad])
    document = json.loads(render_sarif(report, ALL_RULES))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == [r.id for r in ALL_RULES]
    assert run["results"], "expected at least one DET002 result"
    result = run["results"][0]
    assert result["ruleId"] == "DET002"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    index = result["ruleIndex"]
    assert rule_ids[index] == "DET002"


def test_cli_sarif_format_and_sarif_out(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs):\n    return list(set(xs))\n")
    out_file = tmp_path / "lint.sarif"
    code = main(["--format", "sarif", "--sarif-out", str(out_file),
                 str(bad)])
    assert code == 1
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(out_file.read_text())
    assert printed == written
    assert written["runs"][0]["results"]


# ------------------------------------------------ --rule alias
def test_rule_flag_is_select_alias(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs):\n    return list(set(xs))\n")
    assert main(["--rule", "DET002", str(bad)]) == 1
    assert "DET002" in capsys.readouterr().out
    assert main(["--rule", "API001", str(bad)]) == 0
    capsys.readouterr()
    assert main(["--rule", "NOPE999", str(bad)]) == 2


# ------------------------------------------------ --changed
@pytest.fixture()
def git_repo(tmp_path):
    def git(*args):
        subprocess.run(["git", *args], cwd=tmp_path, check=True,
                       capture_output=True)
    git("init", "-q", "-b", "main")
    git("config", "user.email", "lint@test")
    git("config", "user.name", "lint")
    (tmp_path / "old.py").write_text("x = 1\n")
    git("add", "old.py")
    git("commit", "-qm", "seed")
    return tmp_path


def test_changed_files_lists_modified_and_untracked(git_repo):
    (git_repo / "old.py").write_text("x = 2\n")
    (git_repo / "new.py").write_text("y = 1\n")
    changed = changed_files("HEAD", [git_repo])
    names = [p.name for p in changed]
    assert names == ["new.py", "old.py"]


def test_changed_ref_fallback_resolves_head(git_repo):
    # no origin/main here; the default chain falls back to main
    (git_repo / "new.py").write_text("y = 1\n")
    changed = changed_files(None, [git_repo])
    assert [p.name for p in changed] == ["new.py"]


def test_changed_outside_git_returns_none(tmp_path):
    assert changed_files("HEAD", [tmp_path / "nowhere"]) is None


def test_cli_changed_limits_findings_to_changed_files(git_repo, capsys):
    # a pre-existing violation in a committed file is not reported...
    (git_repo / "old.py").write_text(
        "def f(xs):\n    return list(set(xs))\n")
    subprocess.run(["git", "add", "old.py"], cwd=git_repo, check=True,
                   capture_output=True)
    subprocess.run(["git", "commit", "-qm", "bad"], cwd=git_repo,
                   check=True, capture_output=True)
    (git_repo / "new.py").write_text("y = 1\n")
    assert main(["--changed", "HEAD", str(git_repo)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) checked" in out
    # ...but a violation in a changed file is
    (git_repo / "new.py").write_text(
        "def g(xs):\n    return tuple(set(xs))\n")
    assert main(["--changed", "HEAD", str(git_repo)]) == 1
    out = capsys.readouterr().out
    assert "new.py" in out and "old.py" not in out


def test_cli_changed_errors_cleanly_outside_git(tmp_path, capsys):
    source = tmp_path / "x.py"
    source.write_text("x = 1\n")
    assert main(["--changed", "HEAD", str(source)]) == 2
