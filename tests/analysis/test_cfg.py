"""Unit suite for the CFG builder and dataflow solvers.

Covers the shapes the semantic rules lean on: branch joins, loops,
try/except, early returns, guard dominance (including the fall-through
edge that makes ``if bad: return`` guard everything after the ``if``),
reaching definitions across joins, and alias chasing through
``name_sources``.
"""

import ast
import textwrap

from repro.analysis.cfg import build_cfg, iter_function_defs, \
    stmt_expressions
from repro.analysis.dataflow import analyze_function


def func_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    for node in iter_function_defs(tree):
        if name is None or node.name == name:
            return node
    raise AssertionError(f"no function {name!r} in snippet")


def stmt_at(func, needle):
    """First statement whose source text contains *needle*."""
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and needle in ast.unparse(node):
            candidates = [node]
            # prefer the innermost simple statement
            for child in ast.walk(node):
                if child is not node and isinstance(child, ast.stmt) \
                        and needle in ast.unparse(child):
                    candidates.append(child)
            return candidates[-1]
    raise AssertionError(f"no statement matching {needle!r}")


def guard_texts(analysis, stmt):
    return [ast.unparse(t) for t in analysis.dominating_tests(stmt)]


# ------------------------------------------------------------------ CFG
def test_linear_function_is_one_block():
    func = func_of("""
        def f(x):
            a = x + 1
            b = a * 2
            return b
    """)
    cfg = build_cfg(func)
    assert cfg.block_of[id(func.body[0])] == \
        cfg.block_of[id(func.body[1])] == cfg.block_of[id(func.body[2])]
    assert cfg.preds(cfg.exit)


def test_if_else_branches_get_distinct_blocks():
    func = func_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """)
    cfg = build_cfg(func)
    then_stmt = stmt_at(func, "a = 1")
    else_stmt = stmt_at(func, "a = 2")
    ret = stmt_at(func, "return a")
    blocks = {cfg.block_of[id(s)] for s in (then_stmt, else_stmt, ret)}
    assert len(blocks) == 3
    # both arms flow into the join block holding the return
    join = cfg.block_of[id(ret)]
    assert len(cfg.preds(join)) == 2


def test_return_terminates_block():
    func = func_of("""
        def f(x):
            if x:
                return 0
            y = 1
            return y
    """)
    cfg = build_cfg(func)
    ret0 = stmt_at(func, "return 0")
    after = stmt_at(func, "y = 1")
    # nothing flows from the returning block to the code after the if
    ret_block = cfg.block_of[id(ret0)]
    after_block = cfg.block_of[id(after)]
    assert all(e.dst != after_block for e in cfg.succs(ret_block))
    assert any(e.dst == cfg.exit for e in cfg.succs(ret_block))


def test_unreachable_code_still_has_a_block():
    func = func_of("""
        def f(x):
            return x
            y = 1
    """)
    cfg = build_cfg(func)
    dead = stmt_at(func, "y = 1")
    dead_block = cfg.block_of[id(dead)]
    assert not cfg.preds(dead_block)


# ------------------------------------------------ guard dominance
def test_statement_inside_if_is_dominated_by_test():
    func = func_of("""
        def f(self):
            if self.observer is not None:
                self.observer.on_tick()
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "on_tick")
    assert guard_texts(analysis, use) == ["self.observer is not None"]


def test_early_return_guards_the_rest_of_the_function():
    func = func_of("""
        def f(self):
            if self.observer is None:
                return
            self.observer.on_tick()
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "on_tick")
    assert "self.observer is None" in guard_texts(analysis, use)


def test_raise_guard_dominates_like_return():
    func = func_of("""
        def push(self, item):
            if self.full:
                raise OverflowError
            self.q.append(item)
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "append")
    assert "self.full" in guard_texts(analysis, use)


def test_sibling_branch_does_not_guard_the_other_arm():
    func = func_of("""
        def f(self, x):
            if x > 0:
                a = 1
            if self.ok:
                b = 2
            self.touch()
    """)
    analysis = analyze_function(func)
    inner = stmt_at(func, "b = 2")
    texts = guard_texts(analysis, inner)
    assert "self.ok" in texts
    assert "x > 0" in texts     # loose dominance: test on every path
    first = stmt_at(func, "a = 1")
    assert guard_texts(analysis, first) == ["x > 0"]


def test_while_body_is_dominated_by_loop_test():
    func = func_of("""
        def f(self):
            while self.has_room():
                self.q.append(1)
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "append")
    assert guard_texts(analysis, use) == ["self.has_room()"]


def test_for_body_is_not_guarded():
    func = func_of("""
        def f(self, xs):
            for x in xs:
                self.q.append(x)
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "append")
    assert guard_texts(analysis, use) == []


def test_except_handler_does_not_inherit_body_guards():
    func = func_of("""
        def f(self):
            try:
                if self.ok:
                    risky()
            except ValueError:
                handle()
    """)
    analysis = analyze_function(func)
    handler_stmt = stmt_at(func, "handle()")
    assert guard_texts(analysis, handler_stmt) == []


def test_assert_guards_following_statements():
    func = func_of("""
        def f(self, n):
            assert n < self.capacity
            self.q.append(n)
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "append")
    assert guard_texts(analysis, use) == ["n < self.capacity"]


def test_break_guard_shape_in_infinite_loop():
    func = func_of("""
        def f(self):
            while True:
                reason = self.block_reason()
                if reason is not None:
                    break
                self.q.append(1)
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "append")
    assert "reason is not None" in guard_texts(analysis, use)


# ------------------------------------------------ reaching definitions
def test_both_branch_defs_reach_the_join():
    func = func_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """)
    analysis = analyze_function(func)
    ret = stmt_at(func, "return a")
    defs = analysis.reaching.at(ret, "a")
    values = sorted(ast.unparse(d.value) for d in defs
                    if d.value is not None)
    assert values == ["1", "2"]


def test_redefinition_kills_earlier_def_in_straight_line():
    func = func_of("""
        def f():
            a = 1
            a = 2
            return a
    """)
    analysis = analyze_function(func)
    ret = stmt_at(func, "return a")
    defs = analysis.reaching.at(ret, "a")
    assert [ast.unparse(d.value) for d in defs] == ["2"]


def test_parameter_reaches_until_shadowed():
    func = func_of("""
        def f(cycle):
            use(cycle)
            cycle = 0
            use(cycle)
    """)
    analysis = analyze_function(func)
    first = func.body[0]
    assert [d.is_param for d in analysis.reaching.at(first, "cycle")] \
        == [True]
    last = func.body[2]
    defs = analysis.reaching.at(last, "cycle")
    assert len(defs) == 1 and not defs[0].is_param


def test_loop_body_sees_defs_from_prior_iteration():
    func = func_of("""
        def f(xs):
            total = 0
            for x in xs:
                use(total)
                total = total + x
            return total
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "use(total)")
    values = sorted(ast.unparse(d.value) for d in
                    analysis.reaching.at(use, "total")
                    if d.value is not None)
    assert values == ["0", "total + x"]


def test_name_sources_chase_alias_chain():
    func = func_of("""
        def f(self, cycle):
            ifetch = self.mem.ifetch
            ifetch(cycle)
    """)
    analysis = analyze_function(func)
    call_stmt = stmt_at(func, "ifetch(cycle)")
    call = call_stmt.value
    sources = analysis.reaching.name_sources(call.func, call_stmt)
    assert [ast.unparse(s) for s in sources] == ["self.mem.ifetch"]


def test_name_sources_descend_conditional_alias():
    func = func_of("""
        def f(self, observer):
            log = observer.event_log if observer is not None else None
            log.append(1)
    """)
    analysis = analyze_function(func)
    use = stmt_at(func, "log.append")
    name = use.value.func.value
    texts = sorted(ast.unparse(s) for s in
                   analysis.reaching.name_sources(name, use))
    assert texts == ["None", "observer.event_log"]


def test_name_sources_handle_self_referential_defs():
    func = func_of("""
        def f(n):
            n = n + 1
            return n
    """)
    analysis = analyze_function(func)
    ret = stmt_at(func, "return n")
    # AugAssign-style redefinition is opaque; must not recurse forever
    sources = analysis.reaching.name_sources(ret.value, ret)
    assert sources


# ------------------------------------------------ stmt_expressions
def test_stmt_expressions_stay_in_the_statement():
    func = func_of("""
        def f(self, xs):
            for x in compute(xs):
                self.q.append(x)
    """)
    loop = func.body[0]
    texts = [ast.unparse(n) for n in stmt_expressions(loop)
             if isinstance(n, ast.Call)]
    assert texts == ["compute(xs)"]   # body call belongs to the body stmt
