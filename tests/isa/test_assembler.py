"""Unit tests for the text assembler."""

import pytest

from repro.isa import AssemblyError, Opcode, assemble


def test_basic_assembly():
    p = assemble("""
        movi r1, 10
        add r2, r1, 5
        halt
    """)
    assert len(p) == 3
    assert p[0].op == Opcode.MOVI and p[0].imm == 10
    assert p[1].imm == 5 and p[1].src2 is None


def test_comments_and_blank_lines_ignored():
    p = assemble("""
        ; full-line comment
        nop      # trailing comment

        halt
    """)
    assert len(p) == 2


def test_memory_operand_forms():
    p = assemble("""
        load r1, [r2]
        load r1, [r2 + 16]
        load r1, [r2 + r3*8]
        load r1, [r2 + r3*8 + -32]
        store r1, [r2 + 8]
        halt
    """)
    assert p[0].imm == 0 and p[0].src2 is None
    assert p[1].imm == 16
    assert p[2].src2 == 3 and p[2].scale == 8
    assert p[3].imm == -32
    assert p[4].op == Opcode.STORE


def test_label_and_branch():
    p = assemble("""
    top:
        sub r1, r1, 1
        bnez r1, top
        halt
    """)
    assert p[1].target == 0
    assert p.labels["top"] == 0


def test_and_or_mnemonics():
    p = assemble("""
        and r1, r2, r3
        or r1, r2, 255
        halt
    """)
    assert p[0].op == Opcode.AND
    assert p[1].op == Opcode.OR and p[1].imm == 255


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblyError, match="line 2"):
        assemble("nop\nbogus r1, r2\nhalt")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblyError):
        assemble("load r1, [r2 * 8]\nhalt")


def test_bad_register_rejected():
    with pytest.raises(AssemblyError):
        assemble("movi r99, 1\nhalt")


def test_register_range_boundary():
    p = assemble("movi r31, 1\nhalt")       # r31 is the last legal one
    assert p[0].dst == 31
    with pytest.raises(AssemblyError, match="out of range"):
        assemble("movi r32, 1\nhalt")


def test_bad_register_reports_line():
    with pytest.raises(AssemblyError, match="line 3"):
        assemble("nop\nnop\nadd r1, r40, 1\nhalt")


def test_non_register_operand_rejected():
    with pytest.raises(AssemblyError, match="not a register"):
        assemble("add r1, x7, 1\nhalt")


def test_undefined_label_reported():
    with pytest.raises(AssemblyError, match="undefined label"):
        assemble("jmp missing\nhalt")


def test_operand_count_errors():
    with pytest.raises(AssemblyError, match="needs 3 operands"):
        assemble("add r1, r2\nhalt")
    with pytest.raises(AssemblyError, match="needs 2 operands"):
        assemble("load r1\nhalt")


def test_roundtrip_through_disassembler():
    p = assemble("""
    start:
        movi r1, 3
    loop:
        load r2, [r5 + r1*8 + 64]
        fadd r3, r3, r2
        sub r1, r1, 1
        bgez r1, loop
        call fn
        halt
    fn:
        store r3, [r5]
        ret
    """)
    p2 = assemble(p.disassemble())
    assert len(p) == len(p2)
    for a, b in zip(p.instructions, p2.instructions):
        assert a == b
