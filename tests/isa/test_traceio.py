"""Unit tests for binary trace serialisation."""

import struct

import pytest

from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.engine_select import use_numpy
from repro.isa import assemble, execute
from repro.isa import traceio
from repro.isa.traceio import (TraceFormatError, dumps_trace, load_trace,
                               save_trace)


def sample_trace():
    program = assemble("""
        movi r1, 40
        movi r2, 4096
    loop:
        and  r3, r1, 7
        load r4, [r2 + r3*8]
        store r4, [r2 + r3*8 + 512]
        fadd r5, r5, r4
        call fn
        sub r1, r1, 1
        bnez r1, loop
        halt
    fn:
        add r6, r6, 1
        ret
    """)
    memory = {4096 + i * 8: i * 3 for i in range(8)}
    return program, execute(program, memory)


def test_roundtrip_preserves_every_field(tmp_path):
    _, trace = sample_trace()
    path = str(tmp_path / "t.cdft")
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    for a, b in zip(trace, loaded):
        assert a.seq == b.seq
        assert a.pc == b.pc
        assert a.op == b.op
        assert a.dst == b.dst
        assert a.srcs == b.srcs
        assert a.exec_lat == b.exec_lat
        assert a.exec_class == b.exec_class
        assert a.is_load == b.is_load
        assert a.is_store == b.is_store
        assert a.is_branch == b.is_branch
        assert a.is_cond_branch == b.is_cond_branch
        assert a.mem_addr == b.mem_addr
        assert a.taken == b.taken
        assert a.next_pc == b.next_pc
        assert a.src_deps == b.src_deps
        assert a.store_dep == b.store_dep


def test_write_read_write_is_bit_identical(tmp_path):
    """Serialisation is canonical: saving a loaded trace reproduces the
    original file byte for byte (so cached trace files are stable keys)."""
    _, trace = sample_trace()
    first = tmp_path / "a.cdft"
    second = tmp_path / "b.cdft"
    save_trace(trace, str(first))
    save_trace(load_trace(str(first)), str(second))
    assert first.read_bytes() == second.read_bytes()


def test_loaded_trace_simulates_identically(tmp_path):
    _, trace = sample_trace()
    path = str(tmp_path / "t.cdft")
    save_trace(trace, path)
    loaded = load_trace(path)
    a = BaselinePipeline(trace, SimConfig.baseline()).run()
    b = BaselinePipeline(loaded, SimConfig.baseline()).run()
    assert a.cycles == b.cycles
    assert dict(a.counters) == dict(b.counters)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.cdft"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(TraceFormatError, match="not a CDFT"):
        load_trace(str(path))


def test_bad_version_rejected(tmp_path):
    _, trace = sample_trace()
    path = tmp_path / "t.cdft"
    save_trace(trace, str(path))
    data = bytearray(path.read_bytes())
    data[4] = 99
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="version"):
        load_trace(str(path))


def test_truncated_file_rejected(tmp_path):
    _, trace = sample_trace()
    path = tmp_path / "t.cdft"
    save_trace(trace, str(path))
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])
    with pytest.raises(TraceFormatError):
        load_trace(str(path))


def test_trailing_bytes_rejected(tmp_path):
    _, trace = sample_trace()
    path = tmp_path / "t.cdft"
    save_trace(trace, str(path))
    path.write_bytes(path.read_bytes() + b"junk")
    with pytest.raises(TraceFormatError, match="trailing"):
        load_trace(str(path))


def test_empty_trace_roundtrip(tmp_path):
    path = str(tmp_path / "empty.cdft")
    save_trace([], path)
    assert load_trace(path) == []


def test_current_format_is_v2_columnar():
    _, trace = sample_trace()
    data = dumps_trace(trace)
    version = struct.unpack_from("<H", data, 4)[0]
    assert version == traceio.VERSION == 2


@pytest.mark.skipif(not use_numpy(),
                    reason="numpy engine variant not active")
def test_v2_column_decoders_are_bit_identical():
    """The numpy and pure-python column lifters must produce the same
    Python values — the REPRO_ENGINE switch is performance-only."""
    _, trace = sample_trace()
    data = dumps_trace(trace)
    (_version, n, n_srcs_total, n_mem, n_deps_total,
     n_loads) = traceio._V2_HEADER.unpack_from(data, 4)
    args = (data, 4 + traceio._V2_HEADER.size, n, n_srcs_total,
            n_mem, n_deps_total, n_loads)
    py_cols = traceio._v2_columns_python(*args)
    np_cols = traceio._v2_columns_numpy(*args)
    assert py_cols[-1] == np_cols[-1]          # consumed offset
    for a, b in zip(py_cols[:-1], np_cols[:-1]):
        if isinstance(a, bytes):
            assert a == b
        else:
            assert list(a) == list(b)
