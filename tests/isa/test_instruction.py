"""Unit tests for the static Instruction representation."""

import pytest

from repro.isa import Instruction, Opcode


def test_alu_requires_destination():
    with pytest.raises(ValueError):
        Instruction(op=Opcode.ADD, src1=1, src2=2)


def test_branch_requires_target():
    with pytest.raises(ValueError):
        Instruction(op=Opcode.BEQZ, src1=1)


def test_ret_needs_no_target():
    inst = Instruction(op=Opcode.RET)
    assert inst.is_branch


def test_store_data_register_is_a_source():
    inst = Instruction(op=Opcode.STORE, dst=3, src1=1, src2=2, scale=8)
    assert set(inst.source_regs()) == {1, 2, 3}
    assert inst.is_store and inst.is_mem and not inst.writes_reg


def test_load_sources_exclude_destination():
    inst = Instruction(op=Opcode.LOAD, dst=5, src1=1, imm=8)
    assert inst.source_regs() == (1,)
    assert inst.is_load and inst.writes_reg


def test_movi_has_no_sources():
    inst = Instruction(op=Opcode.MOVI, dst=2, imm=42)
    assert inst.source_regs() == ()


def test_cond_branch_properties():
    inst = Instruction(op=Opcode.BNEZ, src1=4, target=0)
    assert inst.is_cond_branch and inst.is_branch
    assert not inst.is_mem
    assert inst.source_regs() == (4,)


def test_instructions_are_hashable_and_frozen():
    a = Instruction(op=Opcode.ADD, dst=0, src1=1, src2=2)
    b = Instruction(op=Opcode.ADD, dst=0, src1=1, src2=2)
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(Exception):
        a.dst = 9  # frozen dataclass
