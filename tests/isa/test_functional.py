"""Unit tests for the functional simulator and dynamic trace generation."""

import pytest

from repro.isa import (
    ExecutionLimitExceeded,
    FunctionalMachine,
    Opcode,
    ProgramBuilder,
    assemble,
    execute,
    to_signed,
    trace_summary,
)


def run_regs(text, memory=None):
    machine = FunctionalMachine(assemble(text), memory)
    steps = 0
    while not machine.halted:
        machine.step()
        steps += 1
        assert steps < 100_000
    return machine


def test_alu_semantics():
    m = run_regs("""
        movi r1, 7
        movi r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        div r6, r1, r2
        mod r7, r1, r2
        and r8, r1, r2
        or r9, r1, r2
        xor r10, r1, r2
        shl r11, r1, 2
        shr r12, r1, 1
        cmplt r13, r2, r1
        cmpeq r14, r1, r1
        halt
    """)
    assert m.regs[3] == 10
    assert m.regs[4] == 4
    assert m.regs[5] == 21
    assert m.regs[6] == 2
    assert m.regs[7] == 1
    assert m.regs[8] == 3
    assert m.regs[9] == 7
    assert m.regs[10] == 4
    assert m.regs[11] == 28
    assert m.regs[12] == 3
    assert m.regs[13] == 1
    assert m.regs[14] == 1


def test_division_by_zero_yields_zero():
    m = run_regs("""
        movi r1, 5
        movi r2, 0
        div r3, r1, r2
        mod r4, r1, r2
        halt
    """)
    assert m.regs[3] == 0
    assert m.regs[4] == 0


def test_negative_values_wrap_and_compare_signed():
    m = run_regs("""
        movi r1, 0
        sub r1, r1, 1
        cmplt r2, r1, r3
        halt
    """)
    assert to_signed(m.regs[1]) == -1
    assert m.regs[2] == 1  # -1 < 0


def test_memory_roundtrip():
    m = run_regs("""
        movi r1, 4096
        movi r2, 99
        store r2, [r1 + 8]
        load r3, [r1 + 8]
        halt
    """)
    assert m.regs[3] == 99


def test_uninitialised_memory_reads_zero():
    m = run_regs("""
        movi r1, 123456
        load r2, [r1]
        halt
    """)
    assert m.regs[2] == 0


def test_branches_taken_and_not_taken():
    m = run_regs("""
        movi r1, 2
    loop:
        sub r1, r1, 1
        bnez r1, loop
        movi r2, 77
        halt
    """)
    assert m.regs[2] == 77
    assert m.regs[1] == 0


def test_call_and_ret():
    m = run_regs("""
        call fn
        movi r2, 5
        halt
    fn:
        movi r1, 9
        ret
    """)
    assert m.regs[1] == 9
    assert m.regs[2] == 5


def test_ret_with_empty_stack_raises():
    machine = FunctionalMachine(assemble("ret\nhalt"))
    # RET needs a target validated lazily at execution time.
    with pytest.raises(RuntimeError, match="empty return stack"):
        machine.step()


def test_trace_dataflow_edges():
    trace = execute(assemble("""
        movi r1, 1
        movi r2, 2
        add r3, r1, r2
        add r4, r3, r3
        halt
    """))
    assert trace[2].src_deps == (0, 1)
    assert trace[3].src_deps == (2,)   # duplicates collapsed
    assert trace[0].src_deps == ()


def test_trace_store_to_load_forwarding_edge():
    trace = execute(assemble("""
        movi r1, 1024
        movi r2, 5
        store r2, [r1]
        load r3, [r1]
        load r4, [r1 + 8]
        halt
    """))
    load_same = trace[3]
    load_other = trace[4]
    assert load_same.store_dep == 2
    assert load_other.store_dep == -1


def test_trace_branch_outcomes():
    trace = execute(assemble("""
        movi r1, 2
    loop:
        sub r1, r1, 1
        bnez r1, loop
        halt
    """))
    branches = [u for u in trace if u.is_cond_branch]
    assert [b.taken for b in branches] == [True, False]
    assert branches[0].next_pc == 1
    assert branches[1].next_pc == 3


def test_trace_sequence_numbers_are_program_order():
    trace = execute(assemble("""
        movi r1, 3
    loop:
        sub r1, r1, 1
        bnez r1, loop
        halt
    """))
    assert [u.seq for u in trace] == list(range(len(trace)))
    for u in trace:
        for dep in u.src_deps:
            assert dep < u.seq


def test_execution_limit():
    with pytest.raises(ExecutionLimitExceeded):
        execute(assemble("""
        loop:
            jmp loop
        """), max_uops=100)


def test_execution_limit_truncates_when_allowed():
    trace = execute(assemble("""
    loop:
        jmp loop
    """), max_uops=10, require_halt=False)
    assert len(trace) == 10


def test_trace_summary_counts():
    trace = execute(assemble("""
        movi r1, 1000
        load r2, [r1]
        store r2, [r1 + 8]
        beqz r2, 4
        halt
    """))
    summary = trace_summary(trace)
    assert summary["loads"] == 1
    assert summary["stores"] == 1
    assert summary["cond_branches"] == 1
    assert summary["uops"] == len(trace)


def test_initial_memory_not_mutated_by_caller_dict():
    mem = {64: 5}
    machine = FunctionalMachine(assemble("""
        movi r1, 64
        movi r2, 9
        store r2, [r1]
        halt
    """), mem)
    while not machine.halted:
        machine.step()
    assert mem[64] == 5          # caller's dict untouched
    assert machine.memory[64] == 9
