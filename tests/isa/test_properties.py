"""Property-based tests for the ISA layer (hypothesis).

These check structural invariants of the dynamic trace for randomly
generated (but always-terminating) programs: sequence numbering, dataflow
edge sanity, and agreement between the trace's recorded dependencies and
an independent recomputation.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.isa import NUM_ARCH_REGS, Opcode, ProgramBuilder, execute

_REG = st.integers(min_value=0, max_value=NUM_ARCH_REGS - 1)
_IMM = st.integers(min_value=-1000, max_value=1000)


@st.composite
def straightline_program(draw):
    """A random straight-line program of ALU/memory ops ending in HALT."""
    b = ProgramBuilder()
    n = draw(st.integers(min_value=1, max_value=40))
    for _ in range(n):
        kind = draw(st.sampled_from(["alu", "movi", "load", "store"]))
        if kind == "movi":
            b.movi(draw(_REG), draw(_IMM))
        elif kind == "alu":
            op = draw(st.sampled_from(["add", "sub", "mul", "xor", "and_", "or_"]))
            getattr(b, op)(draw(_REG), draw(_REG), draw(_REG))
        elif kind == "load":
            b.load(draw(_REG), base=draw(_REG), imm=draw(_IMM) * 8)
        else:
            b.store(draw(_REG), base=draw(_REG), imm=draw(_IMM) * 8)
    b.halt()
    return b.build()


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_trace_seq_is_dense_program_order(program):
    trace = execute(program)
    assert [u.seq for u in trace] == list(range(len(program)))
    assert [u.pc for u in trace] == list(range(len(program)))


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_dataflow_edges_point_backwards_to_real_writers(program):
    trace = execute(program)
    for uop in trace:
        for dep in uop.src_deps:
            assert 0 <= dep < uop.seq
            producer = trace[dep]
            assert producer.writes_reg
            assert producer.dst in uop.srcs


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_dataflow_edges_match_independent_recomputation(program):
    trace = execute(program)
    last_writer = {}
    for uop in trace:
        expected = tuple(dict.fromkeys(
            last_writer[r] for r in uop.srcs if r in last_writer))
        assert uop.src_deps == expected
        if uop.writes_reg:
            last_writer[uop.dst] = uop.seq


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_store_dep_is_youngest_older_store_same_address(program):
    trace = execute(program)
    last_store = {}
    for uop in trace:
        if uop.is_load:
            assert uop.store_dep == last_store.get(uop.mem_addr, -1)
        if uop.is_store:
            last_store[uop.mem_addr] = uop.seq


@given(straightline_program(), st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=30, deadline=None)
def test_register_values_stay_in_64_bits(program, seed_value):
    from repro.isa.functional import FunctionalMachine

    machine = FunctionalMachine(program, {0: seed_value})
    while not machine.halted:
        machine.step()
    for value in machine.regs:
        assert 0 <= value < 2**64
    for value in machine.memory.values():
        assert 0 <= value < 2**64
