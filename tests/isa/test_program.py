"""Unit tests for Program construction and basic-block analysis."""

import pytest

from repro.isa import Instruction, Opcode, Program, ProgramBuilder


def _simple_loop() -> Program:
    b = ProgramBuilder()
    b.movi(1, 4)                  # 0
    b.label("loop")
    b.add(2, 2, imm=1)            # 1
    b.sub(1, 1, imm=1)            # 2
    b.bnez(1, "loop")             # 3
    b.store(2, 1)                 # 4
    b.halt()                      # 5
    return b.build()


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        Program([])


def test_out_of_range_target_rejected():
    with pytest.raises(ValueError):
        Program([Instruction(op=Opcode.JMP, target=99)])


def test_out_of_range_label_rejected():
    with pytest.raises(ValueError):
        Program([Instruction(op=Opcode.NOP)], labels={"x": 5})


def test_leaders_of_simple_loop():
    p = _simple_loop()
    # entry, branch target (1), branch fall-through (4)
    assert p.leaders == frozenset({0, 1, 4})


def test_basic_block_start_mapping():
    p = _simple_loop()
    assert p.basic_block_start(0) == 0
    assert p.basic_block_start(2) == 1
    assert p.basic_block_start(3) == 1
    assert p.basic_block_start(5) == 4


def test_basic_block_end():
    p = _simple_loop()
    assert p.basic_block_end(0) == 0     # block [0] ends before leader 1
    assert p.basic_block_end(1) == 3     # block [1..3] ends at the branch
    assert p.basic_block_end(4) == 5


def test_block_end_at_program_end_without_branch():
    b = ProgramBuilder()
    b.movi(0, 1)
    b.movi(1, 2)
    b.halt()
    p = b.build()
    assert p.basic_block_end(0) == 2


def test_len_and_indexing():
    p = _simple_loop()
    assert len(p) == 6
    assert p[3].op == Opcode.BNEZ


def test_disassemble_mentions_labels():
    p = _simple_loop()
    text = p.disassemble()
    assert "loop:" in text
    assert "bnez r1" in text
