"""Unit tests for opcode classification and latency tables."""

from repro.isa import Opcode
from repro.isa.opcodes import (
    BRANCH_OPS,
    COND_BRANCH_OPS,
    EXEC_LATENCY,
    WRITER_OPS,
    is_branch,
    is_cond_branch,
    is_load,
    is_store,
    writes_register,
)


def test_every_opcode_has_a_latency():
    for op in Opcode:
        assert op in EXEC_LATENCY, f"{op.name} missing from EXEC_LATENCY"
        assert EXEC_LATENCY[op] >= 1


def test_load_store_classification():
    assert is_load(Opcode.LOAD)
    assert not is_load(Opcode.STORE)
    assert is_store(Opcode.STORE)
    assert not is_store(Opcode.LOAD)
    assert not is_load(Opcode.ADD)


def test_branch_classification():
    for op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.BLTZ, Opcode.BGEZ):
        assert is_cond_branch(op)
        assert is_branch(op)
    for op in (Opcode.JMP, Opcode.CALL, Opcode.RET):
        assert is_branch(op)
        assert not is_cond_branch(op)
    assert not is_branch(Opcode.ADD)


def test_cond_branches_subset_of_branches():
    assert COND_BRANCH_OPS < BRANCH_OPS


def test_writer_classification():
    assert writes_register(Opcode.LOAD)
    assert writes_register(Opcode.ADD)
    assert writes_register(Opcode.MOVI)
    assert not writes_register(Opcode.STORE)
    assert not writes_register(Opcode.BEQZ)
    assert not writes_register(Opcode.NOP)
    assert not writes_register(Opcode.HALT)


def test_branches_and_writers_disjoint():
    assert not (BRANCH_OPS & WRITER_OPS)


def test_long_latency_ops_slower_than_simple_alu():
    assert EXEC_LATENCY[Opcode.MUL] > EXEC_LATENCY[Opcode.ADD]
    assert EXEC_LATENCY[Opcode.DIV] > EXEC_LATENCY[Opcode.MUL]
    assert EXEC_LATENCY[Opcode.FDIV] > EXEC_LATENCY[Opcode.FMUL]
