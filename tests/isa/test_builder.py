"""Unit tests for the ProgramBuilder fluent API."""

import pytest

from repro.isa import Opcode, ProgramBuilder


def test_forward_label_resolution():
    b = ProgramBuilder()
    b.jmp("end")
    b.movi(0, 1)
    b.label("end")
    b.halt()
    p = b.build()
    assert p[0].target == 2


def test_undefined_label_raises():
    b = ProgramBuilder()
    b.jmp("nowhere")
    b.halt()
    with pytest.raises(ValueError, match="undefined label"):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder()
    b.label("x")
    b.nop()
    with pytest.raises(ValueError, match="duplicate label"):
        b.label("x")


def test_numeric_targets_pass_through():
    b = ProgramBuilder()
    b.beqz(1, 1)
    b.halt()
    p = b.build()
    assert p[0].target == 1


def test_immediate_and_register_alu_forms():
    b = ProgramBuilder()
    b.add(0, 1, imm=5)
    b.add(0, 1, 2)
    b.halt()
    p = b.build()
    assert p[0].src2 is None and p[0].imm == 5
    assert p[1].src2 == 2


def test_memory_operand_fields():
    b = ProgramBuilder()
    b.load(3, base=1, index=2, scale=8, imm=16)
    b.store(4, base=1, imm=-8)
    b.halt()
    p = b.build()
    load = p[0]
    assert (load.dst, load.src1, load.src2, load.scale, load.imm) == (3, 1, 2, 8, 16)
    store = p[1]
    assert store.dst == 4 and store.src1 == 1 and store.imm == -8


def test_next_pc_tracks_emission():
    b = ProgramBuilder()
    assert b.next_pc == 0
    b.nop()
    assert b.next_pc == 1
    b.nop()
    assert len(b) == 2


def test_call_ret_roundtrip_structure():
    b = ProgramBuilder()
    b.call("fn")
    b.halt()
    b.label("fn")
    b.movi(0, 7)
    b.ret()
    p = b.build()
    assert p[0].op == Opcode.CALL and p[0].target == 2
    assert p[3].op == Opcode.RET
