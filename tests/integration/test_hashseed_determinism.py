"""Cross-process determinism: results must not depend on PYTHONHASHSEED.

This is the runtime twin of simlint's DET002 rule (and the contract the
content-addressed result cache stands on): running the same simulation
in two interpreters with *different* hash seeds — so every str/bytes
hash, set order, and dict collision pattern differs — must produce
bit-identical ``SimResult``s.  The historical bug this pins down:
``workloads/irregular.py`` used to initialise astar's map cells by
iterating ``set(targets)``, tying memory contents to hash order.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

_CHILD = """\
import json
from repro.harness import run_benchmark
from repro.config import SimConfig

results = {}
for mode in ("baseline", "cdf"):
    r = run_benchmark("astar", mode, scale=0.05)
    results[mode] = r.fingerprint()
# exercise config fingerprints too: they feed the on-disk cache keys
results["config"] = SimConfig.with_cdf().fingerprint()
print(json.dumps(results, sort_keys=True))
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_simresult_fingerprints_identical_across_hash_seeds():
    first = _run_with_hashseed("1")
    second = _run_with_hashseed("31337")
    assert first == second, (
        "SimResult fingerprints differ across PYTHONHASHSEED values — "
        "some simulated state depends on hash order "
        f"(seed1={first!r}, seed2={second!r})")
    # sanity: the child actually produced fingerprints for both modes
    assert first.count("\"") >= 6
