"""Differential fuzzing: random programs through all three pipelines.

The strongest whole-system invariant we have is that the baseline, CDF,
and PRE cores perform the *same architectural work* — every dynamic uop
retires exactly once, in program order, no matter how the frontends
reorder fetch. Hypothesis generates random control-flow-heavy programs
(loops, branches, loads, stores, pointer-ish chains) and we assert the
invariants on all three cores.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.isa import NUM_ARCH_REGS, ProgramBuilder, execute
from repro.runahead import PREPipeline

_REG = st.integers(min_value=2, max_value=14)


@st.composite
def looping_program(draw):
    """A random program with a bounded loop, data-dependent branches,
    memory traffic, and filler — the structural ingredients of the suite.

    The loop counter lives in r1 and only the emitted epilogue touches
    it, so termination is guaranteed.
    """
    b = ProgramBuilder()
    iters = draw(st.integers(min_value=20, max_value=120))
    b.movi(1, iters)
    b.movi(15, 1 << 22)                    # memory base
    body = draw(st.integers(min_value=3, max_value=25))
    b.label("loop")
    skip_labels = 0
    for i in range(body):
        kind = draw(st.sampled_from(
            ["alu", "alu", "load", "store", "branch", "fp"]))
        if kind == "alu":
            op = draw(st.sampled_from(["add", "sub", "xor", "and_", "mul"]))
            getattr(b, op)(draw(_REG), draw(_REG),
                           imm=draw(st.integers(0, 255)))
        elif kind == "fp":
            b.fadd(draw(_REG), draw(_REG), imm=draw(st.integers(0, 9)))
        elif kind == "load":
            b.and_(12, draw(_REG), imm=(1 << 14) - 1)
            b.load(draw(_REG), base=15, index=12, scale=8)
        elif kind == "store":
            b.and_(12, draw(_REG), imm=(1 << 14) - 1)
            b.store(draw(_REG), base=15, index=12, scale=8)
        else:
            # A data-dependent forward branch over one filler uop.
            label = f"skip{skip_labels}"
            skip_labels += 1
            b.and_(13, draw(_REG), imm=1)
            b.bnez(13, label)
            b.add(draw(_REG), draw(_REG), imm=1)
            b.label(label)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    seed_words = draw(st.integers(min_value=0, max_value=64))
    memory = {(1 << 22) + 8 * i: draw(st.integers(0, (1 << 16) - 1))
              for i in range(seed_words)}
    return b.build(), memory


_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.data_too_large])


@given(looping_program())
@_SETTINGS
def test_all_three_cores_retire_every_uop_once(case):
    program, memory = case
    trace = execute(program, memory, max_uops=50_000, require_halt=False)
    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    cdf = CDFPipeline(trace, SimConfig.with_cdf(), program).run()
    pre = PREPipeline(trace, SimConfig.with_pre(), program).run()
    assert base.retired_uops == len(trace)
    assert cdf.retired_uops == len(trace)
    assert pre.retired_uops == len(trace)


@given(looping_program())
@_SETTINGS
def test_cdf_internal_accounting_always_balances(case):
    program, memory = case
    trace = execute(program, memory, max_uops=50_000, require_halt=False)
    pipe = CDFPipeline(trace, SimConfig.with_cdf(), program)
    result = pipe.run()
    counters = result.counters
    # Every critically fetched uop was renamed; every renamed one was
    # replayed or flushed; nothing lingers at the end.
    assert counters["crit_fetch_uops"] == counters["crit_rename_uops"]
    assert counters["crit_rename_uops"] == (
        counters["replayed_uops"] + counters["violation_flushed_uops"])
    assert not pipe.critically_fetched
    assert len(pipe.cmq) == 0
    assert len(pipe.rob_crit) == 0
    assert pipe.rs_crit_used == 0
    assert pipe.lq_crit_used == 0
    assert pipe.sq_crit_used == 0
    assert pipe.writers_crit == 0


@given(looping_program())
@_SETTINGS
def test_baseline_resource_accounting_drains(case):
    program, memory = case
    trace = execute(program, memory, max_uops=50_000, require_halt=False)
    pipe = BaselinePipeline(trace, SimConfig.baseline())
    pipe.run()
    assert len(pipe.rob) == 0
    assert pipe.rs_used == 0
    assert pipe.lq_used == 0
    assert pipe.sq_used == 0
    assert pipe.writers_inflight == 0
    assert not pipe.retry_loads


@given(looping_program())
@_SETTINGS
def test_cdf_and_pre_never_lose_to_baseline_catastrophically(case):
    """Reordering must never produce a wildly wrong machine: both
    techniques stay within a sane envelope of the baseline."""
    program, memory = case
    trace = execute(program, memory, max_uops=50_000, require_halt=False)
    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    cdf = CDFPipeline(trace, SimConfig.with_cdf(), program).run()
    pre = PREPipeline(trace, SimConfig.with_pre(), program).run()
    assert cdf.cycles < base.cycles * 1.5
    assert pre.cycles < base.cycles * 1.5
