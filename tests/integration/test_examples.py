"""Smoke tests: every example script runs end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def run_example(name, *args, timeout=300):
    # Examples are plain scripts: pyproject's pytest `pythonpath`
    # does not reach subprocesses, so put src/ on the path explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p)
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, env=env)


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "astar_motivation.py",
            "branch_criticality.py", "scaling_study.py",
            "custom_workload.py", "compiler_hints.py",
            "pipeline_viewer.py"} <= names


@pytest.mark.parametrize("name,args,expect", [
    ("quickstart.py", ("bzip", "0.2"), "speedup"),
    ("astar_motivation.py", ("0.2",), "baseline vs CDF"),
    ("custom_workload.py", (), "custom kernel"),
    ("compiler_hints.py", ("milc", "0.25"), "compiler hints"),
    ("pipeline_viewer.py", ("40",), "legend:"),
])
def test_example_runs(name, args, expect):
    proc = run_example(name, *args)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout


def test_quickstart_rejects_unknown_benchmark():
    proc = run_example("quickstart.py", "gcc")
    assert proc.returncode != 0
    assert "unknown benchmark" in (proc.stderr + proc.stdout)
