"""Cross-module integration tests: the three cores over real workloads.

These check whole-system invariants the unit tests cannot: identical
architectural work across modes, determinism through the full stack, and
the qualitative relationships every figure relies on.
"""

import pytest

from repro.harness import load_workload, run_benchmark, run_comparison
from repro.workloads import suite_names

SMALL = 0.15

#: A fast, representative cross-section of the suite.
SUBSET = ("astar", "bzip", "nab", "zeusmp", "sphinx")


@pytest.fixture(scope="module")
def subset_results():
    return run_comparison(SUBSET, scale=SMALL)


@pytest.mark.parametrize("name", SUBSET)
def test_all_modes_retire_the_same_instruction_count(subset_results, name):
    by_mode = subset_results[name]
    counts = {mode: r.retired_uops for mode, r in by_mode.items()}
    assert len(set(counts.values())) == 1, counts


@pytest.mark.parametrize("name", SUBSET)
def test_results_have_consistent_metadata(subset_results, name):
    for mode, result in subset_results[name].items():
        assert result.benchmark == name
        assert result.mode == mode
        assert result.cycles > 0
        assert result.energy_nj > 0
        assert result.ipc > 0


@pytest.mark.parametrize("name", SUBSET)
def test_rerun_is_bit_identical(subset_results, name):
    for mode in ("baseline", "cdf", "pre"):
        again = run_benchmark(name, mode, scale=SMALL)
        first = subset_results[name][mode]
        assert again.cycles == first.cycles, (name, mode)
        assert again.total_traffic == first.total_traffic


def test_cdf_never_adds_significant_traffic(subset_results):
    for name, by_mode in subset_results.items():
        ratio = by_mode["cdf"].traffic_ratio(by_mode["baseline"])
        assert ratio < 1.05, (name, ratio)


def test_speedups_are_bounded_and_sane(subset_results):
    for name, by_mode in subset_results.items():
        for mode in ("cdf", "pre"):
            ratio = by_mode[mode].speedup_over(by_mode["baseline"])
            assert 0.7 < ratio < 3.0, (name, mode, ratio)


def test_cdf_accounting_identity(subset_results):
    """Critically fetched uops are all renamed, and all renamed critical
    uops are either replayed or flushed."""
    for name in SUBSET:
        counters = subset_results[name]["cdf"].counters
        assert counters["crit_fetch_uops"] == counters["crit_rename_uops"]
        assert counters["crit_rename_uops"] == (
            counters["replayed_uops"]
            + counters["violation_flushed_uops"])


def test_pre_traffic_attribution(subset_results):
    """Runahead traffic appears under its own source tag only for PRE."""
    for name in SUBSET:
        assert subset_results[name]["baseline"].dram_reads["runahead"] == 0
        assert subset_results[name]["cdf"].dram_reads["runahead"] == 0


def test_branch_predictor_work_identical_across_modes(subset_results):
    """Every branch is predicted exactly once regardless of mode (CDF
    predicts at critical fetch, the regular stream replays from the DBQ)."""
    for name in SUBSET:
        by_mode = subset_results[name]
        # Compare over the full run (warmup excluded counters may differ
        # by a few at the snapshot boundary).
        base = by_mode["baseline"].counters["bpred_lookups"]
        cdf = by_mode["cdf"].counters["bpred_lookups"]
        assert abs(base - cdf) <= base * 0.02 + 8, name


def test_scaled_down_core_is_slower():
    from repro.config import SimConfig
    config = SimConfig.baseline()
    config.core = config.core.scaled(96)
    small = run_benchmark("astar", "baseline", scale=SMALL, config=config)
    normal = run_benchmark("astar", "baseline", scale=SMALL)
    assert small.ipc <= normal.ipc


def test_full_suite_smoke_every_kernel_runs_under_cdf():
    for name in suite_names():
        result = run_benchmark(name, "cdf", scale=0.08)
        assert result.retired_uops > 0
        assert result.cycles > 0
