"""Unit tests for execution-unit port arbitration."""

import pytest

from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.isa import ProgramBuilder, execute


def independent_ops_trace(kind: str, n: int = 1200):
    b = ProgramBuilder()
    b.movi(1, n // 6)
    b.label("loop")
    for reg in range(4, 10):
        if kind == "fp":
            b.fadd(reg, reg, imm=1)
        elif kind == "muldiv":
            b.mul(reg, reg, imm=3)
        else:
            b.add(reg, reg, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return execute(b.build())


def run_with_ports(trace, **port_overrides):
    cfg = SimConfig.baseline()
    for key, value in port_overrides.items():
        setattr(cfg.core, key, value)
    return BaselinePipeline(trace, cfg).run()


def test_fp_ports_bound_fp_throughput():
    trace = independent_ops_trace("fp")
    one_port = run_with_ports(trace, num_fp_ports=1)
    four_ports = run_with_ports(trace, num_fp_ports=4)
    assert four_ports.ipc > one_port.ipc * 1.5
    # With one FP port, FP issue rate <= 1/cycle; 6 FP + 2 loop uops per
    # iteration bounds IPC near (8 uops / 6 cycles).
    assert one_port.ipc < 1.7


def test_muldiv_ports_bound_multiplier_throughput():
    trace = independent_ops_trace("muldiv")
    one = run_with_ports(trace, num_muldiv_ports=1)
    three = run_with_ports(trace, num_muldiv_ports=3)
    assert three.ipc > one.ipc * 1.3


def test_alu_ports_bound_integer_throughput():
    trace = independent_ops_trace("alu")
    two = run_with_ports(trace, num_alu_ports=2)
    six = run_with_ports(trace, num_alu_ports=6)
    assert six.ipc > two.ipc * 1.2
    # 8 alu-class uops per iteration through 2 ports: <= 2 IPC.
    assert two.ipc < 2.3


def test_port_starved_uops_eventually_issue():
    trace = independent_ops_trace("fp", n=600)
    result = run_with_ports(trace, num_fp_ports=1)
    assert result.retired_uops == len(trace)


def test_branches_share_alu_ports():
    """A branch-only loop cannot exceed the ALU port count per cycle."""
    b = ProgramBuilder()
    b.movi(1, 600)
    b.label("loop")
    for _ in range(6):
        b.beqz(0, "loop2") if False else b.add(2, 2, imm=0)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    trace = execute(b.build())
    result = run_with_ports(trace, num_alu_ports=1)
    assert result.retired_uops == len(trace)
    assert result.ipc <= 1.05
