"""Detailed timing tests for baseline pipeline stage behaviour."""

import pytest

from repro.config import PrefetcherConfig, SimConfig
from repro.core import BaselinePipeline
from repro.isa import ProgramBuilder, assemble, execute


def cfg(**core_overrides):
    config = SimConfig.baseline()
    config.prefetcher = PrefetcherConfig(enabled=False)
    for key, value in core_overrides.items():
        setattr(config.core, key, value)
    return config


def run(trace, config=None):
    return BaselinePipeline(trace, config or cfg()).run()


def nop_heavy_trace(n=1200):
    b = ProgramBuilder()
    b.movi(1, n // 6)
    b.label("loop")
    for reg in range(4, 10):
        b.movi(reg, 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return execute(b.build())


def test_retire_width_bounds_ipc():
    trace = nop_heavy_trace()
    wide = run(trace, cfg(retire_width=6))
    narrow = run(trace, cfg(retire_width=2))
    assert narrow.ipc <= 2.001
    assert wide.ipc > narrow.ipc


def test_fetch_width_bounds_ipc():
    trace = nop_heavy_trace()
    narrow = run(trace, cfg(fetch_width=1))
    assert narrow.ipc <= 1.001


def test_rename_width_bounds_ipc():
    trace = nop_heavy_trace()
    narrow = run(trace, cfg(rename_width=2))
    assert narrow.ipc <= 2.001


def test_deeper_decode_pipe_costs_on_mispredicts():
    b = ProgramBuilder()
    b.movi(1, 400)
    b.movi(2, 0x5A5A5)
    b.label("loop")
    b.shr(3, 2, imm=1)
    b.xor(2, 2, 3)        # pseudo-random condition
    b.and_(4, 2, imm=1)
    b.bnez(4, "skip")
    b.add(5, 5, imm=1)
    b.label("skip")
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    trace = execute(b.build())
    shallow = run(trace, cfg(decode_latency=1))
    deep = run(trace, cfg(decode_latency=10))
    assert deep.cycles > shallow.cycles


def test_redirect_penalty_costs_on_mispredicts():
    b = ProgramBuilder()
    b.movi(1, 300)
    b.movi(2, 0x13579)
    b.label("loop")
    b.shr(3, 2, imm=1)
    b.xor(2, 2, 3)
    b.and_(4, 2, imm=1)
    b.beqz(4, "skip")
    b.add(5, 5, imm=1)
    b.label("skip")
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    trace = execute(b.build())
    cheap = run(trace, cfg(mispredict_redirect_penalty=1))
    expensive = run(trace, cfg(mispredict_redirect_penalty=40))
    assert expensive.cycles > cheap.cycles * 1.1


def test_prf_limit_throttles_writers():
    trace = nop_heavy_trace()
    tight = cfg(num_phys_regs=48)   # writers limit = 16
    result = run(trace, tight)
    assert result.retired_uops == len(trace)
    roomy = run(trace)
    assert result.cycles >= roomy.cycles


def test_store_commits_happen_at_retire():
    b = ProgramBuilder()
    b.movi(1, 1 << 16)
    for i in range(20):
        b.movi(2, i)
        b.store(2, base=1, imm=i * 8)
    b.halt()
    trace = execute(b.build())
    pipeline = BaselinePipeline(trace, cfg())
    result = pipeline.run()
    assert pipeline.mem.store_commits == 20
    assert result.retired_uops == len(trace)


def test_icache_touched_once_per_line():
    # 40 straight-line uops = 3 I-cache lines (16 uops per line).
    b = ProgramBuilder()
    for _ in range(39):
        b.movi(2, 1)
    b.halt()
    trace = execute(b.build())
    pipeline = BaselinePipeline(trace, cfg())
    pipeline.run()
    assert pipeline.mem.l1i.accesses == 3


def test_dependent_load_waits_for_address():
    text = """
        movi r1, 4096
        movi r2, 64
        load r3, [r1]          ; cold miss
        load r4, [r3 + 4096]   ; address depends on the miss
        halt
    """
    trace = execute(assemble(text), {4096: 128})
    pipeline = BaselinePipeline(trace, cfg())
    pipeline.run()
    first, second = [u for u in trace if u.is_load]
    # The dependent load's issue must follow the first load's completion.
    assert pipeline.counters["llc_miss_loads"] >= 1


def test_max_cycles_guard_fires():
    trace = nop_heavy_trace()
    config = cfg()
    config.max_cycles = 10
    with pytest.raises(RuntimeError, match="max_cycles"):
        BaselinePipeline(trace, config).run()


def test_counters_are_nonnegative():
    result = run(nop_heavy_trace())
    for key, value in result.counters.items():
        assert value >= 0, key
