"""Event-driven engine ⇄ naive reference loop equivalence.

The event-driven ``run()`` loop (unified wakeup set, O(1) idle spans,
stage-skip predicates) must be *bit-identical* to the retained
tick-every-cycle ``run_reference()`` loop: same fingerprints, same
counters, same stall attribution.  These tests pin that equivalence on
the PR-3 fuzz programs (random well-formed control flow across all
three pipeline models) and on the perf micro-suite kernels, and
exercise the subclass wakeup contract (``_schedule_wakeup`` /
``next_wakeups``) with a probed toy pipeline.

``run_reference`` is not dead weight outside this file: it is the
measurement baseline for the ``event_engine_speedup`` ratio in
``repro-sim perf`` (see repro.harness.perfbench).
"""

import pytest

from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.core.sched import SCHED_COUNTER_KEYS
from repro.isa import assemble, execute
from repro.verify.campaign import MODES, _make_pipeline, fuzz_config
from repro.verify.fuzz import fuzz_program

FUZZ_SEEDS = (0, 1, 2)

MICRO_SUITE = (
    ("astar", "baseline"),
    ("mcf", "cdf"),
    ("milc", "pre"),
    ("bzip", "baseline"),
    ("nab", "cdf"),
    ("lbm", "pre"),
)
MICRO_SCALE = 0.05


def fuzz_pipeline(mode, seed):
    program, memory = fuzz_program(seed)
    trace = execute(program, memory, max_uops=200_000, require_halt=False)
    config = fuzz_config(mode, seed)
    return _make_pipeline(mode, trace, config, program,
                          benchmark=f"fuzz-{seed}")


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
@pytest.mark.parametrize("mode", MODES)
def test_fuzz_program_equivalence(mode, seed):
    event = fuzz_pipeline(mode, seed).run()
    naive = fuzz_pipeline(mode, seed).run_reference()
    assert event.fingerprint() == naive.fingerprint(), (
        f"event loop diverged from reference loop on fuzz seed {seed} "
        f"[{mode}]")


@pytest.mark.parametrize("name,mode", MICRO_SUITE)
def test_micro_suite_equivalence(name, mode):
    from repro.harness.runner import (config_for_mode, load_workload,
                                      make_pipeline)

    def build():
        workload = load_workload(name, MICRO_SCALE)
        config = config_for_mode(mode)
        config.stats_warmup_uops = workload.warmup_uops()
        return make_pipeline(mode, workload.trace(), config, workload)

    event = build().run()
    naive = build().run_reference()
    assert event.fingerprint() == naive.fingerprint(), (
        f"event loop diverged from reference loop on {name} [{mode}]")


# ------------------------------------------------------- scheduler stats
def small_trace():
    program = assemble("""
        movi r1, 40
        movi r2, 4096
    loop:
        load r3, [r2]
        add  r4, r3, 1
        store r4, [r2 + 8]
        sub  r1, r1, 1
        bnez r1, loop
        halt
    """)
    return execute(program, {4096: 5})


def test_scheduler_stats_populated_and_registered():
    pipeline = BaselinePipeline(small_trace(), SimConfig.baseline(),
                                benchmark="sched-stats")
    pipeline.run()
    stats = pipeline.sched_stats
    assert stats.events_scheduled > 0
    counters = stats.to_counters()
    assert set(counters) == set(SCHED_COUNTER_KEYS)


def test_scheduler_stats_stay_out_of_the_fingerprint():
    """Engine telemetry describes the engine, not the machine: the two
    loops schedule differently but must fingerprint identically."""
    event_p = BaselinePipeline(small_trace(), SimConfig.baseline(),
                               benchmark="sched-fp")
    naive_p = BaselinePipeline(small_trace(), SimConfig.baseline(),
                               benchmark="sched-fp")
    event = event_p.run()
    naive = naive_p.run_reference()
    assert event.fingerprint() == naive.fingerprint()
    assert event_p.sched_stats.stage_skips \
        != naive_p.sched_stats.stage_skips


# ------------------------------------------------- subclass wakeup hooks
def assert_architecturally_identical(a, b):
    """Everything but the tick-set telemetry must match.

    Extra wakeup ticks land inside idle spans, so they cannot change
    machine state — but ``idle_skipped_cycles`` *describes the tick
    set* (a span the engine jumped in one hop versus two counts one
    fewer skipped cycle), so it is the one counter extra wakeups are
    allowed to shift.  This is also why wakeup sources must never be
    *lost*: the full fingerprints (which include this counter) are
    pinned by the equivalence tests above against the reference loop.
    """
    assert a.cycles == b.cycles
    assert a.retired_uops == b.retired_uops
    ca = {k: v for k, v in a.counters.items() if k != "idle_skipped_cycles"}
    cb = {k: v for k, v in b.counters.items() if k != "idle_skipped_cycles"}
    assert ca == cb
class TickProbe(BaselinePipeline):
    """Records every ticked cycle via the per-tick ``_next_cycle`` call."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ticked = []

    def _next_cycle(self, cycle):
        self.ticked.append(cycle)
        return super()._next_cycle(cycle)


class HeartbeatProbe(TickProbe):
    """Requests a wakeup candidate every 7 cycles via the hook."""

    def next_wakeups(self, cycle):
        return (cycle + 7,)


def test_schedule_wakeup_forces_a_tick_without_changing_results():
    plain = BaselinePipeline(small_trace(), SimConfig.baseline(),
                             benchmark="wakeup")
    baseline_result = plain.run()

    probe = TickProbe(small_trace(), SimConfig.baseline(),
                      benchmark="wakeup")
    target = baseline_result.cycles // 2
    probe._schedule_wakeup(target)
    result = probe.run()

    assert_architecturally_identical(result, baseline_result)
    assert target in probe.ticked, (
        "a heap wakeup must force a tick at its cycle")
    assert probe.sched_stats.wakeups_scheduled == 1


def test_next_wakeups_hook_bounds_idle_jumps():
    plain = BaselinePipeline(small_trace(), SimConfig.baseline(),
                             benchmark="heartbeat")
    baseline_result = plain.run()

    probe = HeartbeatProbe(small_trace(), SimConfig.baseline(),
                           benchmark="heartbeat")
    result = probe.run()

    assert_architecturally_identical(result, baseline_result)
    assert probe.sched_stats.subclass_wakeups > 0
    gaps = [b - a for a, b in zip(probe.ticked, probe.ticked[1:])]
    assert gaps and max(gaps) <= 7, (
        "the engine must honour hook candidates: no idle jump may "
        "overshoot the next heartbeat")
