"""Unit tests for the memory-disambiguation policies."""

import pytest

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload
from repro.isa import ProgramBuilder, assemble, execute


def store_then_loads_trace():
    """A slow store address followed by independent loads: conservative
    disambiguation must hold the loads; oracle lets them bypass."""
    b = ProgramBuilder()
    b.movi(1, 200)
    b.movi(2, 1 << 16)
    b.movi(3, 1 << 18)
    b.label("loop")
    b.movi(4, 5)
    b.mul(5, 4, imm=7)        # slow-ish address chain for the store
    b.mul(5, 5, imm=3)
    b.div(5, 5, imm=21)
    b.and_(5, 5, imm=1023)
    b.store(4, base=2, index=5, scale=8)
    b.load(6, base=3)          # independent loads behind the store
    b.load(7, base=3, imm=64)
    b.add(8, 6, 7)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return execute(b.build())


def run_with(trace, policy):
    config = SimConfig.baseline()
    config.core.memory_disambiguation = policy
    return BaselinePipeline(trace, config).run()


def test_bad_policy_rejected():
    config = SimConfig.baseline()
    config.core.memory_disambiguation = "psychic"
    with pytest.raises(ValueError, match="memory_disambiguation"):
        BaselinePipeline([], config)


def test_conservative_holds_loads_behind_stores():
    trace = store_then_loads_trace()
    oracle = run_with(trace, "oracle")
    conservative = run_with(trace, "conservative")
    assert conservative.counters["loads_held_by_stores"] > 0
    assert oracle.counters["loads_held_by_stores"] == 0
    assert conservative.cycles >= oracle.cycles
    # Same architectural work either way.
    assert conservative.retired_uops == oracle.retired_uops


def test_forwarding_results_identical_across_policies():
    trace = execute(assemble("""
        movi r1, 4096
        movi r2, 99
        store r2, [r1]
        load r3, [r1]
        halt
    """))
    oracle = run_with(trace, "oracle")
    conservative = run_with(trace, "conservative")
    assert oracle.counters["store_forwards"] == 1
    assert conservative.counters["store_forwards"] == 1


def test_unissued_store_list_drains():
    trace = store_then_loads_trace()
    config = SimConfig.baseline()
    config.core.memory_disambiguation = "conservative"
    pipeline = BaselinePipeline(trace, config)
    pipeline.run()
    assert pipeline._unissued_stores == []


def test_cdf_works_under_conservative_disambiguation():
    workload = load_workload("libquantum", 0.3)
    trace = workload.trace()
    config = SimConfig.with_cdf()
    config.core.memory_disambiguation = "conservative"
    pipeline = CDFPipeline(trace, config, workload.program)
    result = pipeline.run()
    assert result.retired_uops == len(trace)
    assert pipeline._unissued_stores == []


def test_store_free_code_unaffected_by_policy():
    b = ProgramBuilder()
    b.movi(1, 300)
    b.movi(2, 1 << 18)
    b.label("loop")
    b.load(3, base=2)
    b.add(4, 4, 3)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    trace = execute(b.build())
    assert run_with(trace, "oracle").cycles == \
        run_with(trace, "conservative").cycles
