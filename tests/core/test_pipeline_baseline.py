"""Behavioural tests for the baseline OoO pipeline.

These check the *physics* of the model: dependence chains serialise,
independent work parallelises, bigger windows expose more MLP, branch
mispredictions cost cycles, and resource limits bound throughput.
"""

import pytest

from repro.config import PrefetcherConfig, SimConfig
from repro.core import BaselinePipeline
from repro.isa import ProgramBuilder, assemble, execute


def run(trace, config=None, **kwargs):
    config = config or SimConfig.baseline()
    return BaselinePipeline(trace, config, **kwargs).run()


def no_prefetch_config(**core_overrides):
    cfg = SimConfig.baseline()
    cfg.prefetcher = PrefetcherConfig(enabled=False)
    for key, value in core_overrides.items():
        setattr(cfg.core, key, value)
    return cfg


def dependent_chain_trace(n=200):
    b = ProgramBuilder()
    b.movi(1, 1)
    b.label("loop")
    for _ in range(8):
        b.add(2, 2, 1)   # serial chain through r2... actually r2 = r2+r1
    b.sub(1, 1, imm=0)   # keep r1 = 1? sub 0 keeps value
    b.add(3, 3, imm=1)
    b.cmplt(4, 3, imm=n)
    b.bnez(4, "loop")
    b.halt()
    return execute(b.build())


def independent_alu_trace(n=200):
    b = ProgramBuilder()
    b.movi(1, 1)
    b.label("loop")
    for reg in range(4, 10):
        b.add(reg, reg, imm=1)   # six independent chains
    b.add(3, 3, imm=1)
    b.cmplt(11, 3, imm=n)
    b.bnez(11, "loop")
    b.halt()
    return execute(b.build())


def test_all_uops_retire():
    trace = independent_alu_trace(50)
    result = run(trace)
    assert result.retired_uops == len(trace)


def test_independent_work_has_higher_ipc_than_serial_chain():
    serial = run(dependent_chain_trace(300))
    parallel = run(independent_alu_trace(300))
    assert parallel.ipc > serial.ipc * 1.5


def test_serial_chain_ipc_near_one_per_dep():
    # A pure add chain retires roughly one chain-op per cycle; with the
    # loop overhead uops running in parallel, IPC lands between 1 and 2.
    result = run(dependent_chain_trace(300))
    assert 0.8 < result.ipc < 2.5


def test_ipc_bounded_by_width():
    result = run(independent_alu_trace(300))
    assert result.ipc <= 6.0


def test_cache_hits_fast_misses_slow():
    def loop(stride, n=400):
        b = ProgramBuilder()
        b.movi(1, n)
        b.movi(2, 1 << 20)
        b.movi(3, 0)
        b.label("loop")
        b.load(4, base=2, index=3, scale=8)
        b.add(3, 3, imm=stride)
        b.sub(1, 1, imm=1)
        b.bnez(1, "loop")
        b.halt()
        return execute(b.build())

    cfg = no_prefetch_config()
    hits = BaselinePipeline(loop(0), cfg).run()          # same address
    cfg2 = no_prefetch_config()
    misses = BaselinePipeline(loop(1024), cfg2).run()    # new line each time
    assert hits.ipc > misses.ipc * 2
    assert sum(misses.dram_reads.values()) > sum(hits.dram_reads.values())


def miss_loop_trace(iters=600, stride_words=64):
    """Independent LLC-missing loads: the Fig. 3 MLP scenario."""
    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, 1 << 21)
    b.movi(3, 0)
    b.label("loop")
    b.load(4, base=2, index=3, scale=8)
    b.add(5, 5, 4)
    b.add(3, 3, imm=stride_words)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return execute(b.build())


def test_bigger_rob_exposes_more_mlp():
    # stride of 72 words = 9 lines: alternates DRAM channels, so the test
    # is latency-bound (not bus-bound) and extra MLP must convert to IPC.
    trace = miss_loop_trace(stride_words=72)
    small = BaselinePipeline(trace, no_prefetch_config(rob_size=32)).run()
    large = BaselinePipeline(trace, no_prefetch_config(rob_size=352)).run()
    assert large.mlp > small.mlp * 1.5
    assert large.ipc > small.ipc * 1.2


def test_mshrs_bound_mlp():
    trace = miss_loop_trace()
    cfg = no_prefetch_config()
    cfg.l1d.mshrs = 2
    cfg.llc.mshrs = 2
    starved = BaselinePipeline(trace, cfg).run()
    roomy = BaselinePipeline(trace, no_prefetch_config()).run()
    assert starved.mlp < roomy.mlp
    assert starved.mlp <= 2.6   # ~2 outstanding plus rounding slack


def test_full_window_stalls_on_miss_loop():
    trace = miss_loop_trace()
    result = BaselinePipeline(trace, no_prefetch_config()).run()
    assert result.full_window_stall_cycles > result.cycles * 0.2


def test_mispredicted_branches_cost_cycles():
    def branchy(n, data_random):
        b = ProgramBuilder()
        b.movi(1, n)
        b.movi(2, 0)        # index
        b.movi(6, 1 << 18)  # table of random bits
        b.label("loop")
        b.load(3, base=6, index=2, scale=8)
        b.bnez(3, "skip") if data_random else b.beqz(3, "skip")
        b.add(4, 4, imm=1)
        b.label("skip")
        b.add(2, 2, imm=1)
        b.and_(2, 2, imm=255)
        b.sub(1, 1, imm=1)
        b.bnez(1, "loop")
        b.halt()
        return b.build()

    import random
    rng = random.Random(3)
    mem = {(1 << 18) + i * 8: rng.randrange(2) for i in range(256)}
    random_trace = execute(branchy(1500, True), dict(mem))
    # All-zero data: beqz always taken -> predictable.
    mem_zero = {(1 << 18) + i * 8: 1 for i in range(256)}
    predictable_trace = execute(branchy(1500, True), dict(mem_zero))
    hard = run(random_trace)
    easy = run(predictable_trace)
    assert easy.ipc > hard.ipc * 1.3
    assert hard.counters["branch_mispredicts"] > 100


def test_store_to_load_forwarding():
    b = ProgramBuilder()
    b.movi(1, 1 << 16)
    b.movi(2, 500)
    b.label("loop")
    b.store(3, base=1)
    b.load(4, base=1)       # forwarded from the store every iteration
    b.add(3, 4, imm=1)
    b.sub(2, 2, imm=1)
    b.bnez(2, "loop")
    b.halt()
    result = run(execute(b.build()))
    assert result.counters["store_forwards"] >= 499


def test_warmup_exclusion_reduces_reported_region():
    trace = miss_loop_trace(800)
    cfg = no_prefetch_config()
    cfg.stats_warmup_uops = len(trace) // 2
    warm = BaselinePipeline(trace, cfg).run()
    cold = BaselinePipeline(trace, no_prefetch_config()).run()
    assert warm.retired_uops < cold.retired_uops
    assert warm.cycles < cold.cycles
    # Snapshot lands within one retire group of the requested point.
    reported = warm.retired_uops
    target = len(trace) - cfg.stats_warmup_uops
    assert target - cfg.core.retire_width <= reported <= target


def test_rob_stall_profiler_sees_noncritical_majority():
    # In the miss loop, only load+index chain is critical; most ROB slots
    # hold non-critical uops during stalls (the paper's Fig. 1 claim).
    trace = miss_loop_trace()
    pipeline = BaselinePipeline(trace, no_prefetch_config(),
                                profile_rob_stalls=True)
    result = pipeline.run()
    from repro.stats import mark_critical_chains
    critical = mark_critical_chains(trace, pipeline.llc_miss_load_seqs)
    fraction = pipeline.profiler.critical_fraction(critical)
    assert 0.0 < fraction < 0.9
    assert pipeline.profiler.stall_cycles > 0


def test_prefetcher_covers_sequential_stream():
    """The stream prefetcher's job in this model is *coverage*: keeping
    sequential loads out of the critical-miss population (which is what
    makes lbm/libquantum-class workloads neutral for CDF and PRE). On an
    all-miss stream the OoO core's own MSHR-level parallelism is already
    near-optimal, so we assert coverage and a bounded IPC delta rather
    than an IPC win."""
    b = ProgramBuilder()
    b.movi(1, 400)
    b.movi(2, 1 << 21)
    b.movi(3, 0)
    b.label("loop")
    b.load(4, base=2, index=3, scale=8)
    b.add(5, 5, 4)
    for _ in range(5):
        b.add(6, 6, imm=1)
        b.mul(7, 6, imm=3)
    b.add(3, 3, imm=8)     # next line each iteration
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    trace = execute(b.build())
    with_pf = BaselinePipeline(trace, SimConfig.baseline()).run()
    without = BaselinePipeline(trace, no_prefetch_config()).run()
    # Coverage: most demand DRAM reads become prefetch fills.
    assert with_pf.dram_reads["prefetch"] > 100
    assert with_pf.dram_reads["demand"] < without.dram_reads["demand"] * 0.6
    # No pathological slowdown from prefetching.
    assert with_pf.ipc > without.ipc * 0.85


def test_llc_miss_loads_recorded():
    trace = miss_loop_trace()
    pipeline = BaselinePipeline(trace, no_prefetch_config())
    pipeline.run()
    assert len(pipeline.llc_miss_load_seqs) > 100


def test_result_counters_contain_energy_inputs():
    result = run(independent_alu_trace(100))
    for key in ("fetch_uops", "rename_uops", "rob_writes", "prf_writes",
                "l1d_accesses", "llc_accesses", "dram_reads"):
        assert key in result.counters, key


def test_deterministic_given_same_inputs():
    trace = miss_loop_trace(200)
    a = BaselinePipeline(trace, no_prefetch_config()).run()
    b = BaselinePipeline(trace, no_prefetch_config()).run()
    assert a.cycles == b.cycles
    assert a.mlp == b.mlp
    assert dict(a.counters) == dict(b.counters)
