"""Fuzz-generator and campaign tests.

The parametrized ``test_fuzz_case_passes`` block is the pytest face of
the tentpole: a fixed seed set driven through all three pipelines at
``verify_level=2``, the same thing the CI smoke job runs via
``repro-sim verify``.
"""

import pytest

from repro.isa import Opcode, execute
from repro.verify import (
    MODES,
    fuzz_config,
    fuzz_program,
    replay_hint,
    run_fuzz_campaign,
    run_fuzz_case,
)

SMOKE_SEEDS = (0, 1, 2, 3, 4, 5)


def program_signature(program):
    return [(int(i.op), i.dst, i.src1, i.src2, i.imm, i.target, i.scale)
            for i in program.instructions]


# ------------------------------------------------------------ determinism
def test_fuzz_program_is_deterministic():
    p1, m1 = fuzz_program(3)
    p2, m2 = fuzz_program(3)
    assert program_signature(p1) == program_signature(p2)
    assert m1 == m2


def test_fuzz_programs_differ_across_seeds():
    signatures = {tuple(program_signature(fuzz_program(seed)[0]))
                  for seed in SMOKE_SEEDS}
    assert len(signatures) == len(SMOKE_SEEDS)


def test_fuzz_config_is_deterministic():
    a = fuzz_config("cdf", 9)
    b = fuzz_config("cdf", 9)
    assert a.core.rob_size == b.core.rob_size
    assert a.core.memory_disambiguation == b.core.memory_disambiguation
    assert a.prefetcher.enabled == b.prefetcher.enabled
    assert a.cdf.mark_longlat_critical == b.cdf.mark_longlat_critical


def test_fuzz_config_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        fuzz_config("turbo", 0)


# ----------------------------------------------------- generated programs
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_fuzz_programs_halt(seed):
    program, memory = fuzz_program(seed)
    trace = execute(program, memory, max_uops=200_000, require_halt=True)
    assert trace[-1].op == int(Opcode.HALT)


def test_fuzz_traces_exercise_the_grammar():
    """Across the smoke seeds the generator produces every stressor the
    module docstring promises: aliasing stores/loads with forwarding,
    pointer-chasing loads, hard-to-predict conditional branches, and
    call/return RAS pressure."""
    ops = set()
    forwarding = 0
    for seed in SMOKE_SEEDS:
        program, memory = fuzz_program(seed)
        for uop in execute(program, memory, max_uops=200_000):
            ops.add(uop.op)
            forwarding += uop.is_load and uop.store_dep >= 0
    assert int(Opcode.LOAD) in ops
    assert int(Opcode.STORE) in ops
    assert int(Opcode.CALL) in ops and int(Opcode.RET) in ops
    assert ops & {int(Opcode.BEQZ), int(Opcode.BNEZ)}
    assert forwarding > 0


# -------------------------------------------------------------- the cases
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
@pytest.mark.parametrize("mode", MODES)
def test_fuzz_case_passes(seed, mode):
    case = run_fuzz_case(seed, modes=(mode,), verify_level=2)
    result = case.results[mode]
    assert result.ipc > 0
    assert case.trace_len > 0


def test_fuzz_case_runs_all_modes_on_one_trace():
    case = run_fuzz_case(0, verify_level=1)
    assert set(case.results) == set(MODES)
    assert case.seed == 0


# --------------------------------------------------------------- campaign
def test_campaign_reports_clean_run():
    report = run_fuzz_campaign(2, seed=0, verify_level=1)
    assert report.passed
    assert len(report.cases) == 2
    summary = report.summary()
    assert "2 cases" in summary
    assert "failed : 0" in summary


def test_campaign_progress_callback_sees_each_seed():
    lines = []
    run_fuzz_campaign(2, seed=11, modes=("baseline",), verify_level=1,
                      progress=lines.append)
    assert len(lines) == 2
    assert lines[0].startswith("seed 11: ok")
    assert lines[1].startswith("seed 12: ok")


def test_replay_hint_matches_cli_surface():
    assert replay_hint(41) == "repro-sim verify --fuzz 1 --seed 41"
