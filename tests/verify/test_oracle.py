"""Differential-oracle tests: clean runs pass, injected bugs are caught.

The centrepiece is the fault-injection test: a test-only monkeypatch
makes the baseline retire stage swap two completed ROB-head entries
once, and the oracle must catch the resulting out-of-program-order
retirement at the *first* divergent uop, naming the field and carrying
the replayable fuzz seed.
"""

import pytest

from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.core.rob import COMPLETE
from repro.isa import assemble, execute
from repro.verify import (
    DifferentialOracle,
    DivergenceError,
    PipelineVerifier,
    replay_hint,
    run_fuzz_case,
)


def sample_workload():
    program = assemble("""
        movi r1, 24
        movi r2, 4096
        movi r5, 0
    loop:
        and  r3, r1, 7
        load r4, [r2 + r3*8]
        store r4, [r2 + r3*8 + 256]
        load r6, [r2 + r3*8 + 256]
        add  r5, r5, r6
        call fn
        sub  r1, r1, 1
        bnez r1, loop
        halt
    fn:
        add r7, r7, 1
        ret
    """)
    memory = {4096 + i * 8: i * 3 + 1 for i in range(8)}
    return program, memory, execute(program, memory)


def verified_pipeline(program, memory, trace, level=2):
    pipeline = BaselinePipeline(trace, SimConfig.baseline(),
                                benchmark="oracle-test")
    oracle = DifferentialOracle(program, memory, context="oracle-test")
    pipeline.attach_verifier(PipelineVerifier(
        level=level, oracle=oracle, context="oracle-test"))
    return pipeline


# ------------------------------------------------------------- clean runs
def test_clean_run_passes_and_counts_checks():
    program, memory, trace = sample_workload()
    pipeline = verified_pipeline(program, memory, trace)
    pipeline.run()    # must not raise
    counters = pipeline.counters
    assert counters["verify_retired_uops"] == len(trace)
    assert counters["verify_oracle_uops"] == len(trace)
    assert counters["verify_dispatch_checks"] == len(trace)
    assert counters["verify_cycle_checks"] > 0


def test_oracle_verifies_store_to_load_forwarding_chain():
    """The sample workload stores then reloads the same address, so a
    clean run proves the store_dep/load-value cross-check accepts real
    forwarding chains (not just the absence of memory traffic)."""
    program, memory, trace = sample_workload()
    forwarded = [u for u in trace if u.is_load and u.store_dep >= 0]
    assert forwarded, "workload must exercise store-to-load forwarding"
    verified_pipeline(program, memory, trace).run()


# -------------------------------------------------------- direct divergence
def test_out_of_order_retirement_diverges():
    program, memory, trace = sample_workload()
    oracle = DifferentialOracle(program, memory, context="direct")
    with pytest.raises(DivergenceError) as exc:
        oracle.on_retire(trace[1], cycle=0)
    err = exc.value
    assert err.field == "retirement order"
    assert err.seq == trace[1].seq
    assert "seq 0" in str(err.expected)


def test_skipped_uop_diverges():
    program, memory, trace = sample_workload()
    oracle = DifferentialOracle(program, memory)
    oracle.on_retire(trace[0], cycle=0)
    with pytest.raises(DivergenceError, match="retirement order"):
        oracle.on_retire(trace[2], cycle=1)


def test_duplicate_retirement_diverges():
    program, memory, trace = sample_workload()
    oracle = DifferentialOracle(program, memory)
    oracle.on_retire(trace[0], cycle=0)
    with pytest.raises(DivergenceError, match="retirement order"):
        oracle.on_retire(trace[0], cycle=1)


def test_short_retirement_count_diverges():
    program, memory, trace = sample_workload()
    oracle = DifferentialOracle(program, memory)
    with pytest.raises(DivergenceError) as exc:
        oracle.on_run_end(retired=len(trace) - 1, trace_len=len(trace))
    assert exc.value.field == "retired uop count"


# ------------------------------------------------------- trace corruption
def test_corrupted_mem_addr_caught_through_pipeline():
    """Mutating one trace record is caught at commit with the right
    field, even though the timing model itself is bug-free."""
    program, memory, trace = sample_workload()
    victim = next(u for u in trace if u.is_load)
    victim.mem_addr += 8
    pipeline = verified_pipeline(program, memory, trace)
    with pytest.raises(DivergenceError) as exc:
        pipeline.run()
    err = exc.value
    assert err.field in ("mem_addr", "store_dep (forwarding store)")
    assert err.seq == victim.seq
    assert "first divergent uop" in str(err)


def test_corrupted_branch_outcome_caught():
    program, memory, trace = sample_workload()
    victim = next(u for u in trace if u.is_cond_branch)
    victim.taken = not victim.taken
    victim.next_pc = victim.pc + 1 if victim.taken is False else victim.next_pc
    oracle = DifferentialOracle(program, memory)
    with pytest.raises(DivergenceError) as exc:
        for uop in trace:
            oracle.on_retire(uop, cycle=uop.seq)
    assert exc.value.field in ("next_pc (branch outcome)", "taken")
    assert exc.value.seq == victim.seq


# -------------------------------------------------- injected pipeline bug
INJECT_SEED = 7


def test_injected_retirement_swap_is_caught(monkeypatch):
    """Acceptance check: a deliberately-buggy retire stage that swaps two
    completed ROB-head entries (retiring them out of program order) must
    be caught by the oracle on the first divergent uop, and the failure
    must carry the replayable fuzz-seed command."""
    original = BaselinePipeline._retire
    state = {"injected": False}

    def buggy_retire(self, cycle):
        rob = self.rob
        if (not state["injected"] and len(rob) >= 2
                and rob[0].state == COMPLETE
                and rob[1].state == COMPLETE
                and rob[0].complete_cycle <= cycle
                and rob[1].complete_cycle <= cycle):
            rob[0], rob[1] = rob[1], rob[0]
            state["injected"] = True
        return original(self, cycle)

    monkeypatch.setattr(BaselinePipeline, "_retire", buggy_retire)
    with pytest.raises(DivergenceError) as exc:
        run_fuzz_case(INJECT_SEED, modes=("baseline",), verify_level=2)
    assert state["injected"], "fault was never injected"
    err = exc.value
    assert err.field == "retirement order"
    assert err.replay == replay_hint(INJECT_SEED)
    report = str(err)
    assert "first divergent uop" in report
    assert f"--seed {INJECT_SEED}" in report


def test_injected_bug_replay_reproduces(monkeypatch):
    """The replay hint is honest: re-running the same seed with the same
    injected bug fails identically; removing the bug passes."""
    original = BaselinePipeline._retire

    def buggy_retire(self, cycle):
        rob = self.rob
        if (len(rob) >= 2 and rob[0].state == COMPLETE
                and rob[1].state == COMPLETE
                and rob[0].complete_cycle <= cycle
                and rob[1].complete_cycle <= cycle):
            rob[0], rob[1] = rob[1], rob[0]
        return original(self, cycle)

    monkeypatch.setattr(BaselinePipeline, "_retire", buggy_retire)
    with pytest.raises(DivergenceError) as first:
        run_fuzz_case(INJECT_SEED, modes=("baseline",), verify_level=1)
    with pytest.raises(DivergenceError) as second:
        run_fuzz_case(INJECT_SEED, modes=("baseline",), verify_level=1)
    assert first.value.seq == second.value.seq
    assert first.value.field == second.value.field
    monkeypatch.setattr(BaselinePipeline, "_retire", original)
    run_fuzz_case(INJECT_SEED, modes=("baseline",), verify_level=1)
