"""Regression tests for bugs the verification subsystem has caught.

Bug #1 (found by the fuzz campaign, seeds 10/23/42/44 at level 2): the
CDF partition controller may move the critical/non-critical boundary
*past the other section's current occupancy* — ``rebalance`` shrinks the
critical share whenever its utilisation is below 3/4, and
``ensure_minimum`` grows it unconditionally at mode entry.  The
allocation gates only compared each section against its own partition
bound, so while the over-bound section drained, the other section could
fill up to its enlarged bound and the two sections together exceeded the
*physical* ROB/RS/LQ/SQ.  The checker's ``occupancy_total`` sweep caught
it ("ROB occupancy 129 exceeds the physical structure (128)").  The fix
adds ``CDFPipeline._physical_block_reason``, consulted by both the
non-critical and the critical allocation gates.
"""

import pytest

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core.rob import RobEntry
from repro.isa import assemble, execute
from repro.verify import run_fuzz_case

#: Campaign seeds that failed with ``occupancy_total`` before the fix.
FAILING_SEEDS = (10, 23, 42, 44)


@pytest.mark.parametrize("seed", FAILING_SEEDS)
def test_previously_failing_cdf_seeds_verify_clean(seed):
    case = run_fuzz_case(seed, modes=("cdf",), verify_level=2)
    assert case.results["cdf"].ipc > 0


# ----------------------------------------------------------- minimized
def make_cdf_pipeline():
    program = assemble("""
        movi r1, 4
    loop:
        add  r2, r2, 1
        sub  r1, r1, 1
        bnez r1, loop
        halt
    """)
    trace = execute(program, {})
    return CDFPipeline(trace, SimConfig.with_cdf(), program,
                       benchmark="regression"), trace


def fill(rob, trace, count):
    for _ in range(count):
        rob.append(RobEntry(trace[0]))


def alu_uop(trace):
    uop = next(u for u in trace if not u.is_mem and not u.is_branch
               and u.dst is not None)
    return uop


def test_noncritical_allocation_respects_physical_rob():
    """Post-shrink state: the critical section sits above its shrunken
    bound while the non-critical section is below its enlarged one.  The
    per-partition gate alone would admit the uop; the physical gate must
    refuse it."""
    p, trace = make_cdf_pipeline()
    fill(p.rob_crit, trace, 20)
    p.partitions.rob.critical_size = 8          # shrunk below occupancy
    fill(p.rob, trace, p.rob_size - 20)
    uop = alu_uop(trace)
    # The pre-fix per-partition condition does NOT block...
    assert len(p.rob) < p.partitions.rob.noncritical_size
    # ...but allocation must, because the sections sum to the ROB size.
    assert p._allocation_block_reason(uop) == "rob"
    assert p._physical_block_reason(uop) == "rob"


def test_critical_allocation_respects_physical_rob():
    """Mirror case: ensure_minimum enlarged the critical share past what
    the (still-draining) non-critical section leaves free."""
    p, trace = make_cdf_pipeline()
    fill(p.rob, trace, p.rob_size - 2)
    fill(p.rob_crit, trace, 2)
    p.partitions.rob.critical_size = 10         # grown at mode entry
    uop = alu_uop(trace)
    assert len(p.rob_crit) < p.partitions.rob.critical_size
    assert p._critical_block_reason(uop) == "rob"


def test_noncritical_allocation_respects_physical_rs():
    """Same bug on the RS: the critical RS share (derived from the ROB
    split) shrinks below the critical section's live RS occupancy."""
    p, trace = make_cdf_pipeline()
    fill(p.rob_crit, trace, 1)      # partitioned accounting is active
    p.partitions.rob.critical_size = 8
    crit_share = p.partitions.rs_critical_size
    p.rs_crit_used = crit_share + 6             # above the shrunken share
    p.rs_used = p.rs_size - p.rs_crit_used
    uop = alu_uop(trace)
    assert p.rs_used < p.rs_size - crit_share   # per-partition gate passes
    assert p._allocation_block_reason(uop) == "rs"


def test_physical_gate_is_quiet_when_sections_fit():
    """The fix must not over-block: with both sections inside their
    bounds and physical headroom available, allocation proceeds."""
    p, trace = make_cdf_pipeline()
    fill(p.rob, trace, 4)
    fill(p.rob_crit, trace, 2)
    uop = alu_uop(trace)
    assert p._physical_block_reason(uop) is None
    assert p._allocation_block_reason(uop) is None
