"""Mutation tests for the pipeline invariant checker.

Each test corrupts one piece of pipeline state (or drives a checker hook
with an inconsistent entry) and asserts the checker fires with exactly
the right ``invariant`` name — i.e. the checker's diagnostics are
trustworthy, not merely "something raised".
"""

import pytest

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.core.rob import COMPLETE, ISSUED, WAITING, RobEntry
from repro.isa import assemble, execute
from repro.verify import InvariantViolation, PipelineVerifier


def small_workload():
    program = assemble("""
        movi r1, 6
        movi r2, 4096
    loop:
        load r3, [r2]
        add  r4, r3, 1
        store r4, [r2 + 8]
        load r5, [r2 + 8]
        sub  r1, r1, 1
        bnez r1, loop
        halt
    """)
    memory = {4096: 5}
    return program, memory, execute(program, memory)


def baseline_with_checker(level=2):
    program, memory, trace = small_workload()
    pipeline = BaselinePipeline(trace, SimConfig.baseline(),
                                benchmark="mutation")
    verifier = PipelineVerifier(level=level, context="mutation",
                                replay="replay-me")
    pipeline.attach_verifier(verifier)
    return pipeline, verifier, trace


def cdf_with_checker(level=2):
    program, memory, trace = small_workload()
    pipeline = CDFPipeline(trace, SimConfig.with_cdf(), program,
                           benchmark="mutation")
    verifier = PipelineVerifier(level=level, context="mutation")
    pipeline.attach_verifier(verifier)
    return pipeline, verifier, trace


def entry_for(trace, seq, state=COMPLETE, complete_cycle=0):
    entry = RobEntry(trace[seq])
    entry.state = state
    entry.complete_cycle = complete_cycle
    return entry


def fired(exc_info):
    return exc_info.value.invariant


# --------------------------------------------------------------- plumbing
def test_level_zero_is_rejected():
    with pytest.raises(ValueError, match="level >= 1"):
        PipelineVerifier(level=0)


def test_violation_report_names_everything():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.rob.append(entry_for(trace, 0, state=ISSUED))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_retire(pipeline.rob[0], cycle=9)
    report = str(exc.value)
    assert "pipeline invariant violated: retire_incomplete" in report
    assert "cycle     : 9" in report
    assert "replay    : replay-me" in report


# ----------------------------------------------------------------- retire
def test_retire_order_violation():
    pipeline, verifier, trace = baseline_with_checker()
    verifier.on_retire(entry_for(trace, 5), cycle=0)
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_retire(entry_for(trace, 3), cycle=1)
    assert fired(exc) == "retire_order"


def test_retire_flushed_violation():
    pipeline, verifier, trace = baseline_with_checker()
    entry = entry_for(trace, 0)
    entry.flushed = True
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_retire(entry, cycle=0)
    assert fired(exc) == "retire_flushed"


def test_retire_incomplete_violation():
    pipeline, verifier, trace = baseline_with_checker()
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_retire(entry_for(trace, 0, state=WAITING), cycle=0)
    assert fired(exc) == "retire_incomplete"


def test_retire_before_complete_violation():
    pipeline, verifier, trace = baseline_with_checker()
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_retire(entry_for(trace, 0, complete_cycle=50), cycle=4)
    assert fired(exc) == "retire_before_complete"


# ------------------------------------------------------------------ issue
def test_issue_with_pending_wakeups_violation():
    pipeline, verifier, trace = baseline_with_checker()
    entry = entry_for(trace, 1, state=WAITING)
    entry.pending = 2
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_issue(entry, cycle=0)
    assert fired(exc) == "issue_pending_wakeups"


def test_issue_flushed_violation():
    pipeline, verifier, trace = baseline_with_checker()
    entry = entry_for(trace, 1, state=WAITING)
    entry.flushed = True
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_issue(entry, cycle=0)
    assert fired(exc) == "issue_flushed"


def test_issue_source_not_ready_violation():
    pipeline, verifier, trace = baseline_with_checker()
    consumer = next(u for u in trace if u.src_deps)
    producer = RobEntry(trace[consumer.src_deps[0]])
    producer.state = WAITING
    pipeline.inflight[producer.seq] = producer
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_issue(RobEntry(consumer), cycle=0)
    assert fired(exc) == "issue_source_not_ready"


def test_forward_without_store_violation():
    pipeline, verifier, trace = baseline_with_checker()
    non_load = next(u for u in trace if not u.is_load)
    entry = RobEntry(non_load)
    entry.forwarded = True
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_issue(entry, cycle=0)
    assert fired(exc) == "forward_without_store"


def test_load_bypassing_forwarding_store_violation():
    pipeline, verifier, trace = baseline_with_checker()
    load = next(u for u in trace if u.is_load and u.store_dep >= 0)
    store = RobEntry(trace[load.store_dep])
    store.state = ISSUED
    pipeline.inflight[store.seq] = store
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_issue(RobEntry(load), cycle=0)   # not .forwarded
    assert fired(exc) == "load_bypassed_forwarding_store"


# --------------------------------------------------------------- dispatch
def test_rob_bound_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.rob_size = 2
    for seq in range(3):
        pipeline.rob.append(entry_for(trace, seq))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_dispatch(pipeline.rob[-1], cycle=0, critical=False)
    assert fired(exc) == "rob_bound"


def test_lq_bound_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.lq_used = pipeline.lq_size + 1
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_dispatch(entry_for(trace, 0), cycle=0, critical=False)
    assert fired(exc) == "lq_bound"


def test_partition_rob_bound_violation():
    pipeline, verifier, trace = cdf_with_checker()
    pipeline.partitions.rob.critical_size = 2
    for seq in range(3):
        pipeline.rob_crit.append(entry_for(trace, seq))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_dispatch(pipeline.rob_crit[-1], cycle=0, critical=True)
    assert fired(exc) == "partition_rob_bound"


def test_partition_lq_bound_violation():
    pipeline, verifier, trace = cdf_with_checker()
    pipeline.lq_crit_used = pipeline.partitions.lq.critical_size + 1
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_dispatch(entry_for(trace, 0), cycle=0, critical=True)
    assert fired(exc) == "partition_lq_bound"


# ------------------------------------------------------------- cycle sweep
def test_occupancy_total_violation():
    pipeline, verifier, trace = cdf_with_checker()
    pipeline.rs_used = pipeline.config.core.rs_size
    pipeline.rs_crit_used = 1     # sections sum past the physical RS
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_cycle_end(cycle=0)
    assert fired(exc) == "occupancy_total"


def test_negative_occupancy_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.sq_used = -1
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_cycle_end(cycle=0)
    assert fired(exc) == "negative_occupancy"


def test_level_one_skips_cycle_sweeps():
    pipeline, verifier, trace = baseline_with_checker(level=1)
    pipeline.sq_used = -1
    verifier.on_cycle_end(cycle=0)    # event-level checking only: no raise


# --------------------------------------------------------- structural scan
def register(pipeline, entry):
    pipeline.inflight[entry.seq] = entry
    return entry


def test_rob_order_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.rob.append(register(pipeline, entry_for(trace, 5)))
    pipeline.rob.append(register(pipeline, entry_for(trace, 3)))
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "rob_order"


def test_flushed_entry_in_rob_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    entry = register(pipeline, entry_for(trace, 0))
    entry.flushed = True
    pipeline.rob.append(entry)
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "flushed_in_rob"


def test_inflight_map_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.rob.append(entry_for(trace, 0))   # not in the inflight map
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "inflight_map"


def test_resource_recount_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.lq_used = 4        # no loads actually sit in the ROB
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "resource_recount"


def test_unissued_store_tracking_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.conservative_mem = True
    pipeline._unissued_stores = [99]      # phantom store
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "unissued_store_tracking"


def test_cache_duplicate_tag_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    lines = pipeline.mem.l1d.set_lines(0)
    for line in lines[:2]:
        line.valid = True
        line.tag = 0
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "cache_duplicate_tag"


def test_cache_tag_set_mismatch_scan_violation():
    pipeline, verifier, trace = baseline_with_checker()
    line = pipeline.mem.llc.set_lines(0)[0]
    line.valid = True
    line.tag = 1          # belongs in set 1, planted in set 0
    with pytest.raises(InvariantViolation) as exc:
        verifier._structural_scan(cycle=0)
    assert fired(exc) == "cache_tag_set_mismatch"


# ---------------------------------------------------------------- run end
def test_drain_rob_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.rob.append(register(pipeline, entry_for(trace, 0)))
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_run_end()
    assert fired(exc) == "drain_rob"


def test_drain_inflight_violation():
    pipeline, verifier, trace = baseline_with_checker()
    register(pipeline, entry_for(trace, 0))       # map entry, empty ROB
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_run_end()
    assert fired(exc) == "drain_inflight"


def test_drain_occupancy_violation():
    pipeline, verifier, trace = baseline_with_checker()
    pipeline.writers_inflight = 2
    with pytest.raises(InvariantViolation) as exc:
        verifier.on_run_end()
    assert fired(exc) == "drain_occupancy"


def test_clean_pipeline_scan_passes():
    """Uncorrupted freshly-built state passes every structural check."""
    pipeline, verifier, trace = baseline_with_checker()
    verifier.on_cycle_end(cycle=0)
    verifier._structural_scan(cycle=0)
    verifier.on_run_end()
