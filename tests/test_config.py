"""Unit tests for the configuration layer (Table 1 defaults)."""

import pytest

from repro.config import (
    CacheConfig,
    CDFConfig,
    CoreConfig,
    DRAMConfig,
    PREConfig,
    PrefetcherConfig,
    SimConfig,
)


def test_baseline_matches_table1_core():
    core = SimConfig.baseline().core
    assert (core.freq_ghz, core.issue_width) == (3.2, 6)
    assert (core.rob_size, core.rs_size) == (352, 160)
    assert (core.lq_size, core.sq_size) == (128, 72)


def test_mode_selection_helpers():
    assert SimConfig.baseline().mode() == "baseline"
    assert SimConfig.with_cdf().mode() == "cdf"
    assert SimConfig.with_pre().mode() == "pre"
    assert SimConfig.with_cdf().cdf.enabled
    assert not SimConfig.with_cdf().pre.enabled
    assert SimConfig.with_pre().pre.enabled


def test_cache_num_sets():
    cfg = CacheConfig(size_bytes=32 * 1024, ways=8, latency=2)
    assert cfg.num_sets == 64
    llc = CacheConfig(size_bytes=1024 * 1024, ways=16, latency=18)
    assert llc.num_sets == 1024


def test_core_scaling_is_proportional():
    core = CoreConfig()
    scaled = core.scaled(704)
    assert scaled.rob_size == 704
    assert scaled.rs_size == pytest.approx(320, abs=2)
    assert scaled.lq_size == pytest.approx(256, abs=2)
    assert scaled.sq_size == pytest.approx(144, abs=2)
    assert scaled.num_phys_regs > core.num_phys_regs
    # Original untouched (dataclasses.replace semantics).
    assert core.rob_size == 352


def test_core_scaling_down_keeps_minimums():
    small = CoreConfig().scaled(16)
    assert small.rs_size >= 16
    assert small.lq_size >= 8
    assert small.sq_size >= 8


def test_dram_core_cycles_rounds_up():
    dram = DRAMConfig()
    assert dram.core_cycles(16, 3.2) == 43     # 16 * 2.667 = 42.67 -> 43
    assert dram.core_cycles(0, 3.2) == 0
    assert dram.total_banks == 2 * 1 * 4 * 4


def test_cdf_defaults_match_paper_text():
    cdf = CDFConfig()
    assert cdf.fill_buffer_entries == 1024
    assert cdf.fill_interval_uops == 10_000
    assert cdf.fill_latency_cycles == 1200
    assert cdf.mask_cache_reset_interval == 200_000
    assert cdf.min_critical_fraction == pytest.approx(0.02)
    assert cdf.max_critical_fraction == pytest.approx(0.50)
    assert cdf.stall_cycle_threshold == 4
    assert cdf.rob_partition_step == 8
    assert cdf.lsq_partition_step == 2
    assert cdf.uops_per_trace == 8
    assert cdf.mark_branches_critical


def test_pre_defaults():
    pre = PREConfig()
    assert pre.enter_exit_overhead > 0
    assert 0.0 <= pre.stale_chain_fraction <= 1.0
    assert pre.max_runahead_distance > 0


def test_prefetcher_defaults():
    pf = PrefetcherConfig()
    assert pf.enabled
    assert pf.num_streams == 64
    assert pf.min_degree <= pf.initial_degree <= pf.max_degree


def test_configs_are_independent_instances():
    a = SimConfig.baseline()
    b = SimConfig.baseline()
    a.core.rob_size = 10
    assert b.core.rob_size == 352
