"""Unit tests for the configuration layer (Table 1 defaults)."""

import pytest

from repro.config import (
    CacheConfig,
    CDFConfig,
    CoreConfig,
    DRAMConfig,
    PREConfig,
    PrefetcherConfig,
    SimConfig,
)


def test_baseline_matches_table1_core():
    core = SimConfig.baseline().core
    assert (core.freq_ghz, core.issue_width) == (3.2, 6)
    assert (core.rob_size, core.rs_size) == (352, 160)
    assert (core.lq_size, core.sq_size) == (128, 72)


def test_mode_selection_helpers():
    assert SimConfig.baseline().mode() == "baseline"
    assert SimConfig.with_cdf().mode() == "cdf"
    assert SimConfig.with_pre().mode() == "pre"
    assert SimConfig.with_cdf().cdf.enabled
    assert not SimConfig.with_cdf().pre.enabled
    assert SimConfig.with_pre().pre.enabled


def test_cache_num_sets():
    cfg = CacheConfig(size_bytes=32 * 1024, ways=8, latency=2)
    assert cfg.num_sets == 64
    llc = CacheConfig(size_bytes=1024 * 1024, ways=16, latency=18)
    assert llc.num_sets == 1024


def test_core_scaling_is_proportional():
    core = CoreConfig()
    scaled = core.scaled(704)
    assert scaled.rob_size == 704
    assert scaled.rs_size == pytest.approx(320, abs=2)
    assert scaled.lq_size == pytest.approx(256, abs=2)
    assert scaled.sq_size == pytest.approx(144, abs=2)
    assert scaled.num_phys_regs > core.num_phys_regs
    # Original untouched (dataclasses.replace semantics).
    assert core.rob_size == 352


def test_core_scaling_down_keeps_minimums():
    small = CoreConfig().scaled(16)
    assert small.rs_size >= 16
    assert small.lq_size >= 8
    assert small.sq_size >= 8


def test_dram_core_cycles_rounds_up():
    dram = DRAMConfig()
    assert dram.core_cycles(16, 3.2) == 43     # 16 * 2.667 = 42.67 -> 43
    assert dram.core_cycles(0, 3.2) == 0
    assert dram.total_banks == 2 * 1 * 4 * 4


def test_cdf_defaults_match_paper_text():
    cdf = CDFConfig()
    assert cdf.fill_buffer_entries == 1024
    assert cdf.fill_interval_uops == 10_000
    assert cdf.fill_latency_cycles == 1200
    assert cdf.mask_cache_reset_interval == 200_000
    assert cdf.min_critical_fraction == pytest.approx(0.02)
    assert cdf.max_critical_fraction == pytest.approx(0.50)
    assert cdf.stall_cycle_threshold == 4
    assert cdf.rob_partition_step == 8
    assert cdf.lsq_partition_step == 2
    assert cdf.uops_per_trace == 8
    assert cdf.mark_branches_critical


def test_pre_defaults():
    pre = PREConfig()
    assert pre.enter_exit_overhead > 0
    assert 0.0 <= pre.stale_chain_fraction <= 1.0
    assert pre.max_runahead_distance > 0


def test_prefetcher_defaults():
    pf = PrefetcherConfig()
    assert pf.enabled
    assert pf.num_streams == 64
    assert pf.min_degree <= pf.initial_degree <= pf.max_degree


def test_configs_are_independent_instances():
    a = SimConfig.baseline()
    b = SimConfig.baseline()
    a.core.rob_size = 10
    assert b.core.rob_size == 352


# ----------------------------------------------------- freeze + memoization
def test_freeze_blocks_mutation_recursively():
    from repro.config import FrozenConfigError

    config = SimConfig.with_cdf()
    assert not config.frozen
    config.freeze()
    assert config.frozen
    assert config.core.frozen                 # nested configs freeze too
    with pytest.raises(FrozenConfigError):
        config.verify_level = 1
    with pytest.raises(FrozenConfigError):
        config.core.rob_size = 16
    with pytest.raises(FrozenConfigError):
        config.cdf.fill_interval_uops = 1


def test_frozen_copy_is_mutable_and_equal():
    config = SimConfig.with_pre().freeze()
    clone = config.copy()
    assert not clone.frozen
    assert clone == config
    clone.core.rob_size = 64                  # mutating the copy is fine
    assert config.core.rob_size != 64


def test_fingerprint_memo_matches_unfrozen_computation():
    mutable = SimConfig.with_cdf()
    frozen = SimConfig.with_cdf().freeze()
    assert frozen.canonical_json() == mutable.canonical_json()
    assert frozen.fingerprint() == mutable.fingerprint()
    # Memoized: repeated calls return the identical string object.
    assert frozen.canonical_json() is frozen.canonical_json()
    assert frozen.fingerprint() is frozen.fingerprint()
    # to_dict round-trips losslessly through the memoized JSON.
    assert frozen.to_dict() == mutable.to_dict()


def test_to_dict_of_frozen_config_returns_fresh_mutable_dict():
    frozen = SimConfig.baseline().freeze()
    first = frozen.to_dict()
    first["core"]["rob_size"] = 1             # caller may scribble on it
    assert frozen.to_dict()["core"]["rob_size"] == 352


def test_engine_job_freezes_config_and_memoizes_key():
    from repro.harness.engine import Job

    config = SimConfig.with_cdf()
    job = Job("bzip", "cdf", scale=0.1, config=config)
    assert config.frozen                      # frozen at Job construction
    assert job.key() == job.key()
    other = Job("bzip", "cdf", scale=0.1, config=SimConfig.with_cdf())
    assert job.key() == other.key()           # equal configs, equal keys
