"""Chaos suite for the sweep service's fault-injection layer.

Every test runs a real sweep (real simulations, real worker processes)
under a deterministic fault schedule and checks two things the ISSUE's
acceptance criteria pin down: the sweep *completes bit-identically* to
a fault-free serial run, and the recovery report *attributes* exactly
the faults that were injected — surviving chaos is not enough, the
service has to account for it.
"""

import pytest

from repro.harness.engine import Engine, Job
from repro.harness.faults import (
    KIND_CORRUPT_JOURNAL,
    KIND_DROP,
    KIND_KILL,
    KIND_STALL,
    FaultSchedule,
    FaultSpec,
    WorkerFaultInjector,
)
from repro.harness.service import SweepService

SMALL = 0.05
NAMES = ("bzip", "milc")


def make_jobs(seeds=(1, 2, 3), scale=SMALL, modes=("baseline", "cdf")):
    return [Job(name, mode, scale=scale, seed=seed)
            for name in NAMES for mode in modes for seed in seeds]


def serial_fingerprints(jobs):
    return [r.fingerprint() for r in
            Engine(jobs=1, use_cache=False).run(jobs)]


def run_service(tmp_path, jobs, faults, workers=3, batch_size=2,
                heartbeat_timeout=5.0, use_cache=True):
    service = SweepService(
        tmp_path / "svc", workers=workers, batch_size=batch_size,
        heartbeat_timeout=heartbeat_timeout, poll=0.02, faults=faults,
        use_cache=use_cache,
        cache=None if use_cache else None)
    keys = service.submit_jobs(jobs)
    results = service.drain()
    return service, [results[key].fingerprint() for key in keys]


# ------------------------------------------------------------ schedules
def test_seeded_schedule_is_deterministic():
    a = FaultSchedule.seeded(42, workers=4, kills=2, stalls=1, drops=1)
    b = FaultSchedule.seeded(42, workers=4, kills=2, stalls=1, drops=1)
    assert a.specs == b.specs
    assert a.describe() == b.describe()


def test_seeded_schedule_places_at_most_one_fault_per_worker():
    schedule = FaultSchedule.seeded(7, workers=4, kills=2, stalls=1,
                                    drops=1)
    slots = [spec.worker for spec in schedule.specs]
    assert len(slots) == len(set(slots)) == 4


def test_seeded_schedule_rejects_more_faults_than_workers():
    with pytest.raises(ValueError):
        FaultSchedule.seeded(0, workers=2, kills=2, stalls=1)


def test_schedule_roundtrips_through_dict():
    schedule = FaultSchedule.seeded(9, workers=3, kills=1, drops=1,
                                    corrupt_journal=2)
    rebuilt = FaultSchedule.from_dict(schedule.to_dict())
    assert rebuilt.specs == schedule.specs
    assert rebuilt.seed == schedule.seed


def test_injector_triggers_on_exact_job_ordinal():
    injector = WorkerFaultInjector(
        [FaultSpec(KIND_KILL, worker=0, at_job=2, phase="before")])
    assert injector.on_job_start() is None        # job 0
    assert injector.on_job_start() is None        # job 1
    assert injector.on_job_start() == "kill"      # job 2


# --------------------------------------------------- exact attribution
# One fault, controlled placement: the requeue count is exactly
# predictable (batch_size - position-in-batch jobs were in flight).
def test_single_kill_before_requeues_exactly_the_unfinished_jobs(
        tmp_path):
    jobs = make_jobs()
    reference = serial_fingerprints(jobs)
    faults = FaultSchedule(specs=[
        FaultSpec(KIND_KILL, worker=0, at_job=1, phase="before")])
    service, fingerprints = run_service(tmp_path, jobs, faults,
                                        use_cache=False)
    report = service.report
    assert fingerprints == reference
    assert report.worker_deaths == 1
    assert report.heartbeats_missed == 0
    assert report.results_dropped == 0
    # Batch was [job0, job1]; job0 completed, job1 died -> 1 requeue.
    assert report.requeues == 1
    assert report.retries == 1
    assert report.jobs_failed == 0


def test_single_kill_after_compute_requeues_the_whole_batch(tmp_path):
    jobs = make_jobs()
    reference = serial_fingerprints(jobs)
    faults = FaultSchedule(specs=[
        FaultSpec(KIND_KILL, worker=1, at_job=0,
                  phase="after_compute")])
    service, fingerprints = run_service(tmp_path, jobs, faults,
                                        use_cache=False)
    report = service.report
    assert fingerprints == reference
    assert report.worker_deaths == 1
    # Died on job 0 of a 2-job batch before writing anything -> both
    # jobs requeued; the computed work is pure redundancy.
    assert report.requeues == 2
    assert report.retries == 2


def test_single_drop_requeues_exactly_the_dropped_job(tmp_path):
    jobs = make_jobs()
    reference = serial_fingerprints(jobs)
    faults = FaultSchedule(specs=[
        FaultSpec(KIND_DROP, worker=0, at_job=0)])
    service, fingerprints = run_service(tmp_path, jobs, faults,
                                        use_cache=False)
    report = service.report
    assert fingerprints == reference
    assert report.worker_deaths == 0
    assert report.results_dropped == 1
    assert report.requeues == 1
    assert report.retries == 1


def test_single_stall_is_detected_and_recovered(tmp_path):
    jobs = make_jobs(seeds=(1, 2))
    reference = serial_fingerprints(jobs)
    faults = FaultSchedule(specs=[
        FaultSpec(KIND_STALL, worker=0, at_job=1)])
    # Generous timeout: on a loaded 2-core box a *healthy* worker can
    # be starved past a tight beat window and read as a second stall.
    service, fingerprints = run_service(
        tmp_path, jobs, faults, heartbeat_timeout=1.5, use_cache=False)
    report = service.report
    assert fingerprints == reference
    assert report.heartbeats_missed == 1
    assert report.worker_deaths == 0          # attributed as a stall
    assert report.requeues >= 1
    assert report.max_time_to_requeue_s >= 1.5


def test_torn_write_kill_still_converges_bit_identically(tmp_path):
    jobs = make_jobs()
    reference = serial_fingerprints(jobs)
    faults = FaultSchedule(specs=[
        FaultSpec(KIND_KILL, worker=0, at_job=0, phase="torn_write")])
    service, fingerprints = run_service(tmp_path, jobs, faults)
    report = service.report
    assert fingerprints == reference
    assert report.worker_deaths == 1
    assert report.requeues == 2               # whole 2-job batch
    assert report.jobs_completed == len(jobs)


# -------------------------------------------------------- seeded chaos
def test_seeded_kills_of_k_workers_mid_sweep(tmp_path):
    jobs = make_jobs(seeds=(1, 2, 3, 4))
    reference = serial_fingerprints(jobs)
    schedule = FaultSchedule.seeded(1234, workers=3, kills=2,
                                    max_job=3)
    assert schedule.count(KIND_KILL) == 2
    service, fingerprints = run_service(tmp_path, jobs, schedule,
                                        use_cache=False)
    report = service.report
    assert fingerprints == reference
    assert report.worker_deaths == 2
    assert report.requeues == report.retries
    assert report.requeues >= 2
    assert report.jobs_failed == 0
    assert report.faults_injected == schedule.summary()


@pytest.mark.slow
def test_acceptance_200_jobs_survive_3_kills_bit_identically(tmp_path):
    """ISSUE 8 acceptance: 200 jobs, >=3 seeded kills, bit-identical
    to a fault-free serial run, fault counts exactly attributed."""
    jobs = [Job(name, mode, scale=0.02, seed=seed)
            for name in NAMES for mode in ("baseline", "cdf")
            for seed in range(50)]
    assert len(jobs) == 200
    reference = serial_fingerprints(jobs)
    schedule = FaultSchedule.seeded(2021, workers=4, kills=3,
                                    max_job=6)
    service, fingerprints = run_service(
        tmp_path, jobs, schedule, workers=4, batch_size=4,
        use_cache=False)
    report = service.report
    assert fingerprints == reference          # bit-identical
    assert report.worker_deaths == 3          # exactly the schedule
    assert report.heartbeats_missed == 0
    assert report.results_dropped == 0
    assert report.requeues == report.retries  # every loss re-ran once
    assert report.requeues >= 3
    assert report.jobs_failed == 0
    assert report.jobs_completed == 200
    assert report.faults_injected == schedule.summary()


def test_combined_fault_kinds_in_one_sweep(tmp_path):
    jobs = make_jobs(seeds=(1, 2, 3, 4))
    reference = serial_fingerprints(jobs)
    schedule = FaultSchedule.seeded(77, workers=4, kills=1, stalls=1,
                                    drops=1, corrupt_journal=1,
                                    max_job=2)
    service, fingerprints = run_service(
        tmp_path, jobs, schedule, workers=4,
        heartbeat_timeout=1.5, use_cache=False)
    report = service.report
    assert fingerprints == reference
    assert report.worker_deaths == 1
    assert report.heartbeats_missed == 1
    assert report.results_dropped == 1
    assert report.jobs_completed == len(jobs)
    # The corrupted record is damage on disk; this incarnation's state
    # is unaffected (the next replay quarantines it -- see
    # test_service.py restart tests).
    assert service.journal.post_append.corrupted == 1


def test_gauges_are_sampled_into_the_report(tmp_path):
    jobs = make_jobs(seeds=(1,))
    service, _ = run_service(tmp_path, jobs, None)
    gauges = service.report.gauges
    assert gauges, "expected queue-depth gauge samples"
    assert set(gauges[0]) >= {"tick", "pending", "running", "done",
                              "workers_alive"}
    assert gauges[-1]["done"] == len(jobs)
