"""Property-style durability tests for the sweep-service journal.

The contract under test (docs/harness.md#the-sweep-service): a journal
truncated or corrupted at *any* byte — every record boundary and every
mid-record offset — must replay without raising, without losing any
record before the damage, and without double-reporting any job after
the fold; damaged bytes are quarantined, never silently discarded.
"""

import json
import pathlib

from repro.harness.journal import (
    Journal,
    decode_line,
    encode_record,
    read_checkpoint,
    replay_journal,
    write_checkpoint,
)
from repro.harness.service import _fold_record


def build_journal(path, n_jobs=4):
    """A realistic record sequence: submit/dispatch/done per job."""
    journal = Journal(path)
    for index in range(n_jobs):
        key = f"job{index:02d}"
        journal.append("submit", key=key, job={"benchmark": "bzip"})
        journal.append("dispatch", key=key, worker="w0.0", batch=index)
        journal.append("done", key=key, source="worker", fp=f"fp{index}")
    journal.close()
    return path


def fold(records):
    state = {}
    for record in records:
        _fold_record(state, record)
    return state


# ----------------------------------------------------------- encoding
def test_record_roundtrip_and_crc():
    line = encode_record({"n": 1, "type": "submit", "key": "k"})
    record = decode_line(line)
    assert record == {"n": 1, "type": "submit", "key": "k"}


def test_any_single_byte_flip_is_detected():
    line = encode_record({"n": 7, "type": "done", "key": "abc"})
    for index in range(len(line)):
        flipped = line[:index] + chr(ord(line[index]) ^ 1) + \
            line[index + 1:]
        if flipped == line:
            continue
        assert decode_line(flipped) is None, f"flip at byte {index}"


# ---------------------------------------------------------- truncation
def test_truncation_at_every_byte_never_loses_a_preceding_record(
        tmp_path):
    reference = tmp_path / "ref.jsonl"
    build_journal(reference, n_jobs=3)
    blob = reference.read_bytes()
    line_starts = [0]
    for index, byte in enumerate(blob):
        if byte == ord("\n"):
            line_starts.append(index + 1)
    # A record survives if all its bytes are present -- the trailing
    # newline is not part of the record, so cutting exactly there
    # (start - 1) still preserves it.
    boundaries = set(line_starts) | {start - 1
                                     for start in line_starts[1:]}
    for cut in range(len(blob) + 1):
        target = tmp_path / "cut" / "journal.jsonl"
        target.parent.mkdir(exist_ok=True)
        target.write_bytes(blob[:cut])
        replay = replay_journal(target)
        whole_lines = sum(1 for start in line_starts[1:]
                          if start - 1 <= cut)
        assert len(replay.records) == whole_lines, f"cut at byte {cut}"
        # Sequence numbers are an intact prefix: nothing before the
        # cut is lost and nothing is reordered.
        assert [r["n"] for r in replay.records] == \
            list(range(1, whole_lines + 1))
        if cut not in boundaries:            # mid-record: torn tail
            assert replay.torn_tail, f"cut at byte {cut}"
            assert replay.quarantined is not None
        # Repair leaves a journal that replays clean.
        again = replay_journal(target)
        assert len(again.records) == whole_lines
        assert not again.torn_tail and again.corrupt_records == 0


def test_fold_after_truncation_never_double_reports(tmp_path):
    path = build_journal(tmp_path / "journal.jsonl", n_jobs=4)
    blob = path.read_bytes()
    for cut in range(len(blob) + 1):
        target = tmp_path / "journal.jsonl"
        target.write_bytes(blob[:cut])
        state = fold(replay_journal(target).records)
        done = [key for key, entry in state.items()
                if entry["status"] == "done"]
        # Every folded job appears exactly once, and a job is either
        # done (its record survived) or recomputable — never lost.
        assert len(done) == len(set(done))
        for entry in state.values():
            assert entry["status"] in ("pending", "running", "done")


# ---------------------------------------------------------- corruption
def test_corrupt_interior_record_is_quarantined_not_fatal(tmp_path):
    path = build_journal(tmp_path / "journal.jsonl", n_jobs=4)
    lines = path.read_text().splitlines(keepends=True)
    for victim in range(len(lines)):
        target = tmp_path / f"case{victim}" / "journal.jsonl"
        target.parent.mkdir()
        mangled = list(lines)
        mangled[victim] = mangled[victim][:10] + "\xde\xad" + \
            mangled[victim][12:]
        target.write_text("".join(mangled))
        replay = replay_journal(target)
        assert len(replay.records) == len(lines) - 1
        if victim == len(lines) - 1:
            assert replay.torn_tail
        else:
            assert replay.corrupt_records == 1
        assert replay.quarantined is not None
        assert replay.quarantined.is_file()
        # A corrupt 'done' merely demotes that job to a recomputable
        # state; no other job is disturbed.
        state = fold(replay.records)
        assert len(state) >= 3


def test_corrupt_done_record_means_recompute_not_loss(tmp_path):
    path = build_journal(tmp_path / "journal.jsonl", n_jobs=3)
    lines = path.read_text().splitlines(keepends=True)
    # Corrupt job01's 'done' record (line index 5: 3 records per job).
    assert json.loads(lines[5])["type"] == "done"
    lines[5] = lines[5].replace('"crc"', '"cRc"', 1)
    path.write_text("".join(lines))
    state = fold(replay_journal(path).records)
    assert state["job00"]["status"] == "done"
    assert state["job02"]["status"] == "done"
    # job01 folds to running (dispatch survived) -> the service demotes
    # running jobs to pending on recovery and recomputes.
    assert state["job01"]["status"] == "running"


def test_readonly_replay_counts_damage_but_never_rewrites(tmp_path):
    path = build_journal(tmp_path / "journal.jsonl", n_jobs=2)
    blob = path.read_bytes()
    path.write_bytes(blob[:-7])              # tear the tail
    before = path.read_bytes()
    replay = replay_journal(path, repair=False)
    assert replay.torn_tail
    assert replay.quarantined is None
    assert path.read_bytes() == before       # untouched
    assert not (tmp_path / "quarantine").exists()


def test_next_seq_resumes_after_surviving_records(tmp_path):
    path = build_journal(tmp_path / "journal.jsonl", n_jobs=2)
    replay = replay_journal(path)
    assert replay.next_seq == 7
    journal = Journal(path, next_seq=replay.next_seq)
    seq = journal.append("submit", key="late")
    journal.close()
    assert seq == 7
    assert [r["n"] for r in replay_journal(path).records] == \
        list(range(1, 8))


# ---------------------------------------------------------- checkpoint
def test_checkpoint_roundtrip(tmp_path):
    target = tmp_path / "checkpoint.json"
    state = {"seq": 12, "jobs": {"k": {"status": "done"}}}
    write_checkpoint(target, state)
    loaded = read_checkpoint(target)
    assert loaded["seq"] == 12
    assert loaded["jobs"] == {"k": {"status": "done"}}


def test_corrupt_checkpoint_is_quarantined_and_ignored(tmp_path):
    target = tmp_path / "checkpoint.json"
    write_checkpoint(target, {"seq": 5, "jobs": {}})
    blob = target.read_text()
    for mangle in (blob[:-20], blob.replace('"seq": 5', '"seq": 6', 1),
                   "not json at all"):
        assert mangle != blob                # the mangle must bite
        target.write_text(mangle)
        assert read_checkpoint(target) is None
        assert not target.exists()           # removed after quarantine
        quarantined = list(
            (tmp_path / "quarantine").glob("checkpoint-*.bad"))
        assert quarantined
        write_checkpoint(target, {"seq": 5, "jobs": {}})


def test_checkpoint_atomic_write_leaves_no_temp_files(tmp_path):
    target = tmp_path / "checkpoint.json"
    for round_ in range(3):
        write_checkpoint(target, {"seq": round_, "jobs": {}})
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.name != "checkpoint.json"]
    assert leftovers == []
