"""Lifecycle tests for the sweep service: the client protocol
(inbox/status/drain), crash-restart warm resume, the engine adapter,
and the CLI surface.

The headline property (ISSUE 8 acceptance): SIGKILL the *service
process itself* mid-sweep, restart it on the same directory, and the
sweep finishes with zero recomputation of already-completed jobs —
everything completed before the kill is served from the journal +
content-addressed cache.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import cli
from repro.harness.engine import (
    Engine,
    Job,
    configure,
    get_engine,
)
from repro.harness.service import (
    ServiceEngine,
    ServicePaths,
    SweepService,
    service_status,
    submit_to_inbox,
)

SMALL = 0.05
NAMES = ("bzip", "milc")


def make_jobs(seeds=(1, 2), scale=SMALL):
    return [Job(name, mode, scale=scale, seed=seed)
            for name in NAMES for mode in ("baseline", "cdf")
            for seed in seeds]


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Per-test result cache so warm-resume counts are deterministic."""
    path = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
    return path


# -------------------------------------------------------------- protocol
def test_inbox_submission_is_idempotent_and_keyed(tmp_path, cache_dir):
    jobs = make_jobs(seeds=(1,))
    keys = submit_to_inbox(tmp_path / "svc", jobs)
    again = submit_to_inbox(tmp_path / "svc", jobs)
    assert keys == again == [job.key() for job in jobs]
    inbox = list((tmp_path / "svc" / "inbox").glob("*.json"))
    assert len(inbox) == len(jobs)           # resubmits coalesced


def test_drain_picks_up_inbox_submissions(tmp_path, cache_dir):
    jobs = make_jobs(seeds=(1,))
    keys = submit_to_inbox(tmp_path / "svc", jobs)
    service = SweepService(tmp_path / "svc", workers=2, poll=0.02)
    results = service.drain()
    assert sorted(results) == sorted(keys)
    assert service.report.jobs_completed == len(jobs)
    status = service_status(tmp_path / "svc")
    assert status["jobs"]["done"] == len(jobs)
    assert status["inbox"] == 0
    assert status["report"]["jobs"]["completed"] == len(jobs)


def test_second_drain_is_pure_cache(tmp_path, cache_dir):
    jobs = make_jobs(seeds=(1,))
    first = SweepService(tmp_path / "svc", workers=2, poll=0.02)
    first.submit_jobs(jobs)
    first.drain()
    assert first.report.jobs_executed == len(jobs)

    second = SweepService(tmp_path / "svc", workers=2, poll=0.02)
    second.submit_jobs(jobs)
    results = second.drain()
    assert second.report.jobs_executed == 0
    assert second.report.jobs_from_cache == len(jobs)
    assert len(results) == len(jobs)


def test_recovery_report_written_and_valid_json(tmp_path, cache_dir):
    service = SweepService(tmp_path / "svc", workers=1, poll=0.02)
    service.submit_jobs(make_jobs(seeds=(1,)))
    service.drain()
    report = json.loads((tmp_path / "svc" /
                         "recovery_report.json").read_text())
    assert report["schema"] == 1
    assert report["jobs"]["completed"] == report["jobs"]["submitted"]
    assert report["recovery"]["worker_deaths"] == 0


# ---------------------------------------------------- restart semantics
def _run_service_child(directory, jobs, cache_env):
    os.environ["REPRO_CACHE_DIR"] = cache_env
    service = SweepService(directory, workers=2, batch_size=2,
                           poll=0.02)
    service.submit_jobs(jobs)
    service.drain()


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="child-process service run requires fork")
def test_sigkill_of_service_resumes_with_zero_recomputation(
        tmp_path, cache_dir):
    jobs = make_jobs(seeds=(1, 2, 3))
    directory = tmp_path / "svc"
    child = multiprocessing.Process(
        target=_run_service_child,
        args=(directory, jobs, str(cache_dir)))
    child.start()
    # Let it complete part of the sweep, then kill it dead.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status = service_status(directory)
        if status["jobs"]["done"] >= 2:
            break
        time.sleep(0.05)
    os.kill(child.pid, signal.SIGKILL)
    child.join()
    assert child.exitcode == -signal.SIGKILL

    done_before = service_status(directory)["jobs"]["done"]
    assert done_before >= 2

    service = SweepService(directory, workers=2, batch_size=2,
                           poll=0.02)
    keys = service.submit_jobs(jobs)
    results = service.drain()
    report = service.report
    assert sorted(results) == sorted(keys)
    assert report.journal_replays == 1
    # Zero recomputation of completed jobs: everything the journal
    # recorded as done came back from the cache, and execution covers
    # exactly the remainder.
    assert report.jobs_from_cache >= done_before
    assert report.jobs_executed == len(jobs) - report.jobs_from_cache
    # Orphaned workers from the killed service notice their parent is
    # gone and exit; the restarted service owns the directory alone.
    reference = [r.fingerprint()
                 for r in Engine(jobs=1, use_cache=False).run(jobs)]
    assert [results[key].fingerprint() for key in keys] == reference


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="child-process service run requires fork")
def test_corrupt_journal_from_killed_run_is_quarantined_on_restart(
        tmp_path, cache_dir):
    from repro.harness.faults import FaultSchedule, FaultSpec, \
        KIND_CORRUPT_JOURNAL

    jobs = make_jobs(seeds=(1, 2))
    directory = tmp_path / "svc"

    def chaos_child():
        os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
        faults = FaultSchedule(specs=[
            FaultSpec(KIND_CORRUPT_JOURNAL, record=2),
            FaultSpec(KIND_CORRUPT_JOURNAL, record=5)])
        service = SweepService(directory, workers=2, batch_size=2,
                               poll=0.02, faults=faults)
        service.submit_jobs(jobs)
        service.drain()

    child = multiprocessing.Process(target=chaos_child)
    child.start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if service_status(directory)["jobs"]["done"] >= 1:
            break
        time.sleep(0.05)
    os.kill(child.pid, signal.SIGKILL)
    child.join()

    service = SweepService(directory, workers=2, poll=0.02)
    keys = service.submit_jobs(jobs)
    results = service.drain()
    # The two corrupted records were quarantined, not fatal, and no
    # job was lost: corrupt submits are re-submitted, corrupt dones
    # are recomputed bit-identically.
    assert service.report.journal_corrupt_records >= 1
    quarantine = list((directory / "quarantine").glob("journal-*.bad"))
    assert quarantine
    assert sorted(results) == sorted(keys)
    reference = [r.fingerprint()
                 for r in Engine(jobs=1, use_cache=False).run(jobs)]
    assert [results[key].fingerprint() for key in keys] == reference


# ------------------------------------------------------- engine adapter
def test_service_engine_matches_pool_engine_results(tmp_path, cache_dir):
    jobs = make_jobs(seeds=(1,))
    reference = [r.fingerprint()
                 for r in Engine(jobs=2, use_cache=False).run(jobs)]
    engine = ServiceEngine(tmp_path / "svc", jobs=2)
    results = engine.run(jobs)
    assert [r.fingerprint() for r in results] == reference
    assert engine.stats.total == len(jobs)
    assert "service-engine" in engine.summary()


def test_service_engine_duplicate_jobs_in_one_run(tmp_path, cache_dir):
    job = Job("bzip", "baseline", scale=SMALL, seed=1)
    engine = ServiceEngine(tmp_path / "svc", jobs=1)
    results = engine.run([job, job, job])
    assert len(results) == 3
    fingerprints = {r.fingerprint() for r in results}
    assert len(fingerprints) == 1


def test_env_flag_routes_default_engine_through_service(
        tmp_path, cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "svc"))
    engine = configure(jobs=2)
    assert isinstance(engine, ServiceEngine)
    assert isinstance(get_engine(), ServiceEngine)
    jobs = make_jobs(seeds=(1,))
    results = engine.run(jobs)
    assert len(results) == len(jobs)
    monkeypatch.delenv("REPRO_SERVICE_DIR")
    assert isinstance(configure(), Engine)   # back to the pool engine


def test_service_engine_requires_a_directory(monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_DIR", raising=False)
    with pytest.raises(ValueError):
        ServiceEngine()


# ----------------------------------------------------------------- CLI
def test_cli_submit_serve_status_roundtrip(tmp_path, cache_dir, capsys):
    directory = str(tmp_path / "svc")
    assert cli.main(["submit", directory, "bzip", "--modes", "baseline",
                     "--scale", str(SMALL), "--repeat-seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "submitted 2 job(s)" in out

    assert cli.main(["serve", directory, "--once", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "recovery report" in out

    assert cli.main(["status", directory]) == 0
    out = capsys.readouterr().out
    assert "done" in out and "2" in out


def test_cli_drain_is_idempotent_on_a_drained_directory(
        tmp_path, cache_dir, capsys):
    directory = str(tmp_path / "svc")
    cli.main(["submit", directory, "bzip", "--modes", "baseline",
              "--scale", str(SMALL)])
    assert cli.main(["drain", directory, "--jobs", "1"]) == 0
    assert cli.main(["drain", directory, "--jobs", "1"]) == 0
    capsys.readouterr()
    assert cli.main(["status", directory]) == 0
    assert "failed" in capsys.readouterr().out


def test_cli_serve_with_fault_knobs(tmp_path, cache_dir, capsys):
    directory = str(tmp_path / "svc")
    cli.main(["submit", directory, "bzip", "milc", "--modes",
              "baseline", "cdf", "--scale", str(SMALL),
              "--repeat-seeds", "2"])
    assert cli.main(["serve", directory, "--once", "--jobs", "3",
                     "--batch-size", "2", "--fault-seed", "7",
                     "--kills", "1"]) == 0
    report = json.loads((tmp_path / "svc" /
                         "recovery_report.json").read_text())
    assert report["faults_injected"]["kill_worker"] == 1


# ------------------------------------------------------------ supervision
@pytest.fixture
def poison_kind():
    """A job kind whose execute always crashes the worker process.

    Registered in the parent and inherited by forked workers, so every
    dispatch of a poison job burns one attempt from its retry budget.
    """
    from repro.harness.engine import JOB_KINDS, JobKind

    def explode(job):
        raise RuntimeError("poison job: deliberate worker crash")

    JOB_KINDS["poison"] = JobKind(
        execute=explode, encode=lambda r: r, decode=lambda p: p)
    yield "poison"
    del JOB_KINDS["poison"]


fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="requires fork so workers inherit the test job kind")


@fork_only
def test_retry_budget_exhaustion_marks_jobs_failed(tmp_path, cache_dir,
                                                   poison_kind):
    """A job that crashes its worker on every attempt must not wedge
    the service: it burns its retry budget and is reported failed."""
    service = SweepService(tmp_path / "svc", workers=1, batch_size=1,
                           max_attempts=2, poll=0.02)
    jobs = [Job("bzip", "baseline", scale=SMALL, seed=1,
                kind=poison_kind)]
    service.submit_jobs(jobs)
    results = service.drain()
    assert results == {}
    assert service.failed_keys() == [jobs[0].key()]
    assert service.report.jobs_failed == 1
    # One worker death per attempt, and not a single death more.
    assert service.report.worker_deaths == service.max_attempts
    assert service.report.requeues == service.max_attempts - 1


@fork_only
def test_failed_jobs_do_not_poison_healthy_ones(tmp_path, cache_dir,
                                                poison_kind):
    healthy = make_jobs(seeds=(1,))
    poison = Job("bzip", "baseline", scale=SMALL, seed=1,
                 kind=poison_kind)
    service = SweepService(tmp_path / "svc", workers=2, batch_size=1,
                           max_attempts=2, poll=0.02)
    keys = service.submit_jobs(healthy + [poison])
    results = service.drain()
    assert sorted(results) == sorted(keys[:-1])
    assert service.failed_keys() == [poison.key()]
    assert service.report.jobs_completed == len(healthy)


@fork_only
def test_service_engine_raises_on_failed_jobs(tmp_path, cache_dir,
                                              poison_kind):
    engine = ServiceEngine(tmp_path / "svc", jobs=1, batch_size=1,
                           max_attempts=2, poll=0.02)
    with pytest.raises(RuntimeError, match="failed 1 job"):
        engine.run([Job("bzip", "baseline", scale=SMALL, seed=1,
                        kind=poison_kind)])


def test_paths_layout_is_the_documented_protocol(tmp_path):
    paths = ServicePaths(tmp_path / "svc")
    paths.ensure()
    assert (tmp_path / "svc" / "inbox").is_dir()
    assert (tmp_path / "svc" / "results").is_dir()
    assert (tmp_path / "svc" / "dispatch").is_dir()
    assert (tmp_path / "svc" / "hb").is_dir()
    assert paths.journal.name == "journal.jsonl"
    assert paths.checkpoint.name == "checkpoint.json"
    assert paths.report.name == "recovery_report.json"
