"""Result-cache corruption races (ISSUE 8, satellite 3).

The content-addressed cache is shared by every worker of every sweep
service (and by the pool engine), so two writers can race on the same
key while a third crashes mid-write. The contract under test:

* ``get`` never returns garbage — a torn or corrupt entry is detected,
  deleted, and reported as a miss (recompute, not wrong data);
* a crash *before* the atomic rename never disturbs the existing entry;
* concurrent same-key writers, some of them crashing mid-write, leave
  the cache in a state from which one more ``put`` fully recovers.
"""

import json
import multiprocessing
import os

import pytest

from repro.harness.engine import Engine, Job, ResultCache, job_from_dict
from repro.harness.faults import FaultSchedule, FaultSpec, KIND_KILL
from repro.harness.service import SweepService

PAYLOAD = {"critical_fraction": 0.25}


def profile_job(seed=1):
    return Job("bzip", "baseline", scale=0.05, seed=seed,
               kind="rob_profile")


# ------------------------------------------------------------ torn entries
def test_torn_entry_is_a_miss_and_is_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    job = profile_job()
    cache.put(job, PAYLOAD)
    path = cache.path_for(job.key())
    blob = path.read_text()
    for cut in range(1, len(blob)):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(blob[:cut])
        got = cache.get(job)
        if got is not None:                   # a decodable prefix must
            assert got == PAYLOAD             # still decode *correctly*
        else:
            assert not path.exists()          # torn entry removed
        cache.put(job, PAYLOAD)
    assert cache.get(job) == PAYLOAD


def test_wrong_kind_entry_is_rejected_not_returned(tmp_path):
    cache = ResultCache(tmp_path)
    job = profile_job()
    cache.put(job, PAYLOAD)
    # Same key, different kind claimed on disk: schema drift must read
    # as a miss, never as a payload of the wrong shape.
    path = cache.path_for(job.key())
    document = json.loads(path.read_text())
    document["kind"] = "sim"
    path.write_text(json.dumps(document))
    assert cache.get(job) is None


def test_crash_before_rename_leaves_previous_entry_intact(tmp_path):
    cache = ResultCache(tmp_path)
    job = profile_job()
    cache.put(job, PAYLOAD)
    path = cache.path_for(job.key())
    # A writer that died after writing its temp file but before the
    # atomic rename: the temp must not shadow or corrupt the entry.
    stale = path.with_name(path.name + ".tmp99999")
    stale.write_text('{"torn": ')
    assert cache.get(job) == PAYLOAD
    newer = {"critical_fraction": 0.75}
    cache.put(job, newer)
    assert cache.get(job) == newer


# ------------------------------------------------------- process races
def _racing_writer(cache_dir, job_dict, crash):
    cache = ResultCache(cache_dir)
    job = job_from_dict(job_dict)
    if crash:
        # Worst-case writer: no atomic rename, dies mid-write, leaving
        # a torn entry at the final path (what torn_write injects).
        path = cache.path_for(job.key())
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({"kind": job.kind, "payload": PAYLOAD})
        path.write_text(blob[: len(blob) // 2])
        os._exit(137)
    cache.put(job, PAYLOAD)
    os._exit(0)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="racing writers use fork")
def test_concurrent_same_key_writers_with_crashers(tmp_path):
    job = profile_job()
    job_dict = {"kind": "rob_profile", "benchmark": "bzip",
                "mode": "baseline", "scale": 0.05, "seed": 1}
    cache = ResultCache(tmp_path)
    for round_ in range(3):
        writers = [
            multiprocessing.Process(
                target=_racing_writer,
                args=(str(tmp_path), job_dict, index % 2 == 1))
            for index in range(8)]
        for process in writers:
            process.start()
        for process in writers:
            process.join(30)
        # Whatever interleaving happened: either a fully valid entry
        # survived, or the torn loser is detected and read as a miss.
        got = cache.get(job)
        assert got in (PAYLOAD, None)
        # One healthy put always recovers the key.
        cache.put(job, PAYLOAD)
        assert cache.get(job) == PAYLOAD


# -------------------------------------------------------- service level
def test_torn_write_fault_converges_to_a_valid_cache(tmp_path,
                                                     monkeypatch):
    """After a sweep that injected a torn cache write, every cache
    entry decodes and matches the sweep's own (serial-identical)
    results — the torn intermediate state is unobservable afterward."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    jobs = [Job(name, mode, scale=0.05, seed=seed)
            for name in ("bzip", "milc") for mode in ("baseline", "cdf")
            for seed in (1, 2)]
    faults = FaultSchedule(specs=[
        FaultSpec(KIND_KILL, worker=0, at_job=0, phase="torn_write")])
    service = SweepService(tmp_path / "svc", workers=2, batch_size=2,
                           poll=0.02, faults=faults)
    keys = service.submit_jobs(jobs)
    results = service.drain()
    assert service.report.worker_deaths == 1
    reference = {job.key(): result.fingerprint() for job, result in
                 zip(jobs, Engine(jobs=1, use_cache=False).run(jobs))}
    cache = ResultCache(cache_dir)
    for job in jobs:
        cached = cache.get(job)
        assert cached is not None, f"missing cache entry for {job}"
        assert cached.fingerprint() == reference[job.key()]
        assert results[job.key()].fingerprint() == reference[job.key()]
