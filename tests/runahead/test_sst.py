"""Unit tests for the Stalling Slice Table."""

import pytest

from repro.runahead import StallingSliceTable


def test_capacity_validation():
    with pytest.raises(ValueError):
        StallingSliceTable(0)


def test_add_and_contains():
    sst = StallingSliceTable(4)
    sst.add(0x10)
    assert 0x10 in sst
    assert 0x20 not in sst
    assert len(sst) == 1


def test_duplicate_add_is_idempotent():
    sst = StallingSliceTable(4)
    sst.add(0x10)
    sst.add(0x10)
    assert len(sst) == 1
    assert sst.insertions == 1


def test_fifo_eviction_when_full():
    sst = StallingSliceTable(2)
    sst.add(1)
    sst.add(2)
    sst.add(3)
    assert 1 not in sst
    assert 2 in sst and 3 in sst
    assert sst.evictions == 1


def test_refresh_protects_from_eviction():
    sst = StallingSliceTable(2)
    sst.add(1)
    sst.add(2)
    sst.add(1)    # refresh
    sst.add(3)    # evicts 2, not 1
    assert 1 in sst
    assert 2 not in sst


def test_pcs_listing():
    sst = StallingSliceTable(4)
    for pc in (5, 7, 9):
        sst.add(pc)
    assert sst.pcs() == [5, 7, 9]
