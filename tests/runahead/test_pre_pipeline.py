"""Behavioural tests for the Precise Runahead pipeline."""

import random

import pytest

from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.isa import ProgramBuilder, execute
from repro.runahead import PREPipeline

IDX_BASE = 1 << 24
BIG_BASE = 1 << 26
N = 1 << 14


def miss_heavy_workload(iters=900, filler=20, seed=7):
    rng = random.Random(seed)
    mem = {IDX_BASE + i * 8: rng.randrange(1 << 20) for i in range(N)}
    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, IDX_BASE)
    b.movi(3, BIG_BASE)
    b.movi(4, 0)
    b.label("loop")
    b.load(5, base=2, index=4, scale=8)
    b.load(6, base=3, index=5, scale=8)
    b.add(7, 7, 6)
    for _ in range(filler):
        b.add(8, 8, imm=3)
        b.mul(9, 8, imm=5)
        b.add(10, 9, imm=1)
    b.add(4, 4, imm=1)
    b.and_(4, 4, imm=N - 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    program = b.build()
    trace = execute(program, mem, max_uops=400_000)
    return program, trace


@pytest.fixture(scope="module")
def pre_runs():
    program, trace = miss_heavy_workload()
    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    pipe = PREPipeline(trace, SimConfig.with_pre(), program)
    pre = pipe.run()
    return program, trace, base, pre, pipe


def test_requires_pre_enabled_config():
    program, trace = miss_heavy_workload(iters=5)
    with pytest.raises(ValueError):
        PREPipeline(trace, SimConfig.baseline(), program)


def test_all_uops_retire(pre_runs):
    _, trace, _, pre, _ = pre_runs
    assert pre.retired_uops == len(trace)


def test_runahead_engages_on_full_window_stalls(pre_runs):
    _, _, _, pre, pipe = pre_runs
    assert pre.counters["runahead_intervals"] > 0
    assert pre.counters["runahead_uops"] > 0
    assert pre.counters["runahead_prefetches"] > 0
    assert len(pipe.sst) > 0


def test_sst_captures_the_stalling_load(pre_runs):
    program, _, _, _, pipe = pre_runs
    # pc 5 is the LLC-missing load (big[idx]).
    critical_load_pc = 5
    assert critical_load_pc in pipe.sst


def test_runahead_generates_extra_traffic(pre_runs):
    _, _, base, pre, _ = pre_runs
    assert sum(pre.dram_reads.values()) > sum(base.dram_reads.values())
    assert pre.dram_reads["runahead"] > 0


def test_some_chains_are_stale(pre_runs):
    _, _, _, pre, _ = pre_runs
    assert pre.counters["runahead_wrong_address"] > 0
    # But most chains are correct (the SST slices are simple).
    assert pre.counters["runahead_wrong_address"] < \
        pre.counters["runahead_prefetches"]


def test_mlp_inflated_relative_to_baseline(pre_runs):
    """Fig. 14: PRE's MLP rises, partly from useless wrong-path loads."""
    _, _, base, pre, _ = pre_runs
    assert pre.mlp > base.mlp


def test_deterministic_with_same_seed(pre_runs):
    program, trace, _, pre, _ = pre_runs
    again = PREPipeline(trace, SimConfig.with_pre(), program).run()
    assert again.cycles == pre.cycles
    assert dict(again.counters) == dict(pre.counters)


def test_seed_changes_wrong_address_pattern():
    program, trace = miss_heavy_workload(iters=300)
    cfg_a = SimConfig.with_pre()
    cfg_b = SimConfig.with_pre()
    cfg_b.seed = 999
    a = PREPipeline(trace, cfg_a, program).run()
    b = PREPipeline(trace, cfg_b, program).run()
    assert a.counters["runahead_prefetches"] > 0
    # Different seeds flip different chains; totals may differ slightly.
    assert b.counters["runahead_prefetches"] > 0


def test_perfect_chains_beat_stale_chains():
    program, trace = miss_heavy_workload()
    perfect_cfg = SimConfig.with_pre()
    perfect_cfg.pre.stale_chain_fraction = 0.0
    stale_cfg = SimConfig.with_pre()
    stale_cfg.pre.stale_chain_fraction = 0.6
    perfect = PREPipeline(trace, perfect_cfg, program).run()
    stale = PREPipeline(trace, stale_cfg, program).run()
    assert perfect.ipc > stale.ipc
    assert perfect.total_traffic < stale.total_traffic


def test_no_runahead_without_stalls():
    """An L1-resident loop never stalls the window: PRE must stay out."""
    b = ProgramBuilder()
    b.movi(1, 3000)
    b.movi(2, 1 << 16)
    b.label("loop")
    b.load(3, base=2)
    b.add(4, 4, 3)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    program = b.build()
    trace = execute(program, max_uops=100_000)
    result = PREPipeline(trace, SimConfig.with_pre(), program).run()
    # At most the single cold-start miss can stall the window; no
    # steady-state runahead activity and no runahead traffic.
    assert result.counters["runahead_intervals"] <= 1
    assert result.dram_reads["runahead"] == 0
