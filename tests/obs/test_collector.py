"""Unit tests for repro.obs.collector (sampling, bounds, payload)."""

import json

import pytest

from repro.obs import ObsCollector
from repro.obs.collector import _BoundedEventLog


class _FakeMem:
    def __init__(self):
        self.obs = None


class _FakePipeline:
    """Just enough pipeline surface for the collector to bind to."""

    def __init__(self, event_log=None):
        self.mem = _FakeMem()
        self.event_log = event_log
        self.counters = {}
        self.gauge_calls = []

    def obs_gauges(self, cycle):
        self.gauge_calls.append(cycle)
        return {"cycle": cycle, "retired": cycle * 2, "rob": cycle % 7}


def test_level_zero_must_not_construct_a_collector():
    with pytest.raises(ValueError):
        ObsCollector(level=0)


def test_bind_wires_memory_hierarchy_hook():
    pipeline = _FakePipeline()
    collector = ObsCollector(level=1)
    assert collector.bind(pipeline) is collector
    assert pipeline.mem.obs is collector


def test_level1_does_not_install_an_event_log():
    pipeline = _FakePipeline(event_log=None)
    ObsCollector(level=1).bind(pipeline)
    assert pipeline.event_log is None


def test_level2_installs_bounded_log_preserving_existing_events():
    pipeline = _FakePipeline(event_log=[(0, "F", 0)])
    collector = ObsCollector(level=2).bind(pipeline)
    assert isinstance(pipeline.event_log, _BoundedEventLog)
    assert list(pipeline.event_log) == [(0, "F", 0)]
    assert collector.uop_events is pipeline.event_log


def test_bounded_event_log_counts_drops():
    log = _BoundedEventLog(cap=3)
    for i in range(5):
        log.append((i, "F", i))
    assert len(log) == 3
    assert log.dropped == 2


def test_sampling_grid_is_cycle_bucketed():
    """One sample per interval bucket, robust to idle-skip jumps."""
    pipeline = _FakePipeline()
    collector = ObsCollector(level=1, sample_interval=10).bind(pipeline)
    # Cycles 0..9 are bucket 0 -> exactly one sample (at cycle 0); the
    # jump from 12 to 57 must produce one sample at 57, not one per
    # skipped bucket; 61 opens bucket 6 and 70 opens bucket 7.
    for cycle in (0, 1, 2, 9, 12, 57, 58, 61, 70):
        collector.on_cycle_end(cycle)
    assert collector.samples["cycle"] == [0, 12, 57, 61, 70]


def test_on_run_end_takes_final_sample_and_sets_counters():
    pipeline = _FakePipeline()
    collector = ObsCollector(level=1, sample_interval=100).bind(pipeline)
    collector.on_cycle_end(0)
    collector.on_mem_request(5, 105, 0x40, "dram", "demand", merged=False)
    collector.on_run_end(42)
    assert collector.samples["cycle"] == [0, 42]
    assert pipeline.counters["obs_samples"] == 2
    assert pipeline.counters["obs_mem_events"] == 1
    assert pipeline.counters["obs_uop_events"] == 0


def test_mem_request_aggregation_and_level2_rows():
    pipeline = _FakePipeline()
    collector = ObsCollector(level=2, max_mem_events=2).bind(pipeline)
    collector.on_mem_request(0, 100, 0x40, "dram", "demand", merged=False)
    collector.on_mem_request(1, 100, 0x40, "dram", "demand", merged=True)
    collector.on_mem_request(2, 30, 0x80, "llc", "prefetch", merged=False)
    collector.on_mem_request(3, 99, 0xC0, "dram", "demand", merged=False)
    payload = collector.payload()
    demand = payload["mem_latency"]["dram/demand"]
    assert demand == {"requests": 3, "total_latency": 100 + 99 + 96,
                      "merges": 1}
    # Row recording is capped at 2, aggregation is not.
    assert len(payload["mem_events"]) == 2
    assert payload["dropped_mem_events"] == 2


def test_level1_payload_has_no_event_streams():
    pipeline = _FakePipeline()
    collector = ObsCollector(level=1).bind(pipeline)
    collector.on_mem_request(0, 10, 0x40, "llc", "demand", merged=False)
    payload = collector.payload()
    assert "mem_events" not in payload
    assert "uop_events" not in payload
    assert payload["level"] == 1


def test_payload_is_json_serializable_and_columnar():
    pipeline = _FakePipeline(event_log=[])
    collector = ObsCollector(level=2, sample_interval=1).bind(pipeline)
    for cycle in range(4):
        pipeline.event_log.append((cycle, "F", cycle))
        collector.on_cycle_end(cycle)
    collector.on_run_end(4)
    payload = collector.payload()
    round_tripped = json.loads(json.dumps(payload, sort_keys=True))
    assert round_tripped["samples"]["cycle"] == [0, 1, 2, 3, 4]
    assert round_tripped["samples"]["retired"] == [0, 2, 4, 6, 8]
    assert len(round_tripped["uop_events"]) == 4
    assert round_tripped["dropped_uop_events"] == 0


def test_sample_schema_is_fixed_at_first_sample():
    pipeline = _FakePipeline()
    collector = ObsCollector(level=1, sample_interval=1).bind(pipeline)
    collector.on_cycle_end(0)
    collector.on_cycle_end(1)
    columns = set(collector.samples)
    assert columns == {"cycle", "retired", "rob"}
    assert all(len(v) == 2 for v in collector.samples.values())
