"""Unit tests for the run-report renderer (sparklines, tables, html)."""

import pytest

from repro.obs import render_run_report
from repro.obs.runreport import histogram, sparkline
from repro.stats import Counters, SimResult


def _result(obs=None, mode="cdf", counters=None):
    return SimResult(
        benchmark="unit", mode=mode, cycles=1000, retired_uops=1500,
        mlp=2.0, dram_reads={"demand": 10}, dram_writes={},
        full_window_stall_cycles=50, energy_nj=123.0,
        counters=Counters(counters or {}), obs=obs)


def _obs():
    return {
        "level": 2,
        "sample_interval": 100,
        "samples": {
            "cycle": [0, 100, 200, 300],
            "retired": [0, 200, 250, 600],
            "rob": [0, 64, 128, 32],
            "fetch_ahead": [0, 12, 40, 8],
        },
        "mem_latency": {"dram/demand": {"requests": 4,
                                        "total_latency": 480,
                                        "merges": 1}},
    }


# ------------------------------------------------------------ primitives
def test_sparkline_flat_series_is_all_low_blocks():
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_sparkline_spans_full_range():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(line) == 8


def test_sparkline_buckets_long_series_deterministically():
    values = list(range(1000))
    assert sparkline(values, width=10) == sparkline(values, width=10)
    assert len(sparkline(values, width=10)) == 10


def test_sparkline_empty():
    assert sparkline([]) == "(no samples)"


def test_histogram_counts_every_value_once():
    lines = histogram([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], bins=5)
    assert len(lines) == 5
    total = sum(int(line.split(")")[1].split()[0]) for line in lines)
    assert total == 10


def test_histogram_empty():
    assert histogram([]) == ["(no samples)"]


# ------------------------------------------------------------ the report
def test_report_headline_and_tables():
    counters = {"dispatch_stall_rob_cycles": 120}
    text = render_run_report(_result(obs=_obs(), counters=counters))
    assert "# Run report: unit / cdf" in text
    assert "**IPC**: 1.500" in text
    assert "| rob | 120 | 12.0% |" in text
    assert "| dram/demand | 4 | 1 | 120.0 |" in text
    assert "Fetch-ahead distance" in text


def test_report_with_baseline_comparison():
    baseline = _result(mode="baseline")
    baseline.cycles = 2000          # half the IPC
    text = render_run_report(_result(obs=_obs()), baseline=baseline)
    assert "**speedup over baseline**: 2.000x" in text
    assert "Baseline has no critical stream" in text


def test_report_without_obs_degrades_gracefully():
    text = render_run_report(_result(obs=None))
    assert "No sampled time-series" in text
    assert "No memory-request aggregates" in text


def test_html_report_is_self_contained_and_escaped():
    html = render_run_report(_result(obs=_obs()), fmt="html")
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html
    assert "Run report: unit / cdf" in html


def test_unknown_format_rejected():
    with pytest.raises(ValueError):
        render_run_report(_result(), fmt="pdf")
