"""End-to-end obs tests: real pipelines, levels 0/1/2, one schema.

These are the tentpole's acceptance tests in miniature:

* obs_level 0 attaches nothing and changes nothing (the bit-identity
  half is pinned by tests/memory/test_hierarchy_fingerprints.py and the
  trace-smoke CI job, which also asserts the subsystem is never
  imported in a clean process);
* level 1 yields sampled gauges + latency aggregates;
* level 2 adds the uop/mem event streams that feed the Chrome-trace
  exporter and the ASCII timeline — the same schema end-to-end.
"""

import pytest

from repro.harness import run_benchmark
from repro.harness.timeline import render_timeline
from repro.obs import export_chrome_trace, validate_chrome_trace

SCALE = 0.05
OBS_COUNTERS = {"obs_samples", "obs_mem_events", "obs_uop_events"}


@pytest.fixture(scope="module")
def results():
    by_level = {}
    for level in (0, 1, 2):
        by_level[level] = run_benchmark("astar", "cdf", scale=SCALE,
                                        obs_level=level)
    return by_level


def test_level0_attaches_no_payload(results):
    assert results[0].obs is None
    assert not OBS_COUNTERS & set(results[0].counters)


def test_obs_never_perturbs_timing(results):
    r0, r1, r2 = results[0], results[1], results[2]
    assert r0.cycles == r1.cycles == r2.cycles
    assert r0.retired_uops == r1.retired_uops == r2.retired_uops
    assert r0.mlp == r1.mlp == r2.mlp
    assert r0.dram_reads == r1.dram_reads == r2.dram_reads
    # Counters may differ only by the obs bookkeeping keys.
    for other in (r1, r2):
        assert set(other.counters) - set(r0.counters) <= OBS_COUNTERS
        for key, value in r0.counters.items():
            assert other.counters[key] == value, key


def test_level1_samples_and_latency_aggregates(results):
    obs = results[1].obs
    assert obs["level"] == 1
    samples = obs["samples"]
    assert samples["cycle"][0] >= 0
    assert len(samples["cycle"]) == results[1].counters["obs_samples"]
    # The cumulative gauges are monotone.
    assert samples["retired"] == sorted(samples["retired"])
    assert samples["cycle"] == sorted(samples["cycle"])
    # CDF-only gauges are present on the cdf pipeline.
    assert "crit_partition" in samples and "fetch_ahead" in samples
    assert "mem_events" not in obs
    assert obs["mem_latency"]     # astar at 0.05 always misses some


def test_level2_event_streams_feed_every_consumer(results):
    result = results[2]
    obs = result.obs
    assert obs["uop_events"] and obs["mem_events"]
    assert result.counters["obs_uop_events"] == len(obs["uop_events"])

    # Chrome-trace exporter.
    trace = export_chrome_trace(obs, label="integration")
    assert validate_chrome_trace(trace) == []

    # ASCII timeline straight off the obs payload.
    from repro.harness import load_workload
    workload = load_workload("astar", SCALE)
    text = render_timeline(obs, workload.trace(), 0, 10)
    assert "legend:" in text
    assert "|" in text


def test_obs_payload_round_trips_through_simresult_json(results):
    from repro.stats import SimResult
    result = results[2]
    clone = SimResult.from_json(result.to_json())
    assert clone.obs == result.obs
    assert clone.fingerprint() == result.fingerprint()


def test_levels_share_the_same_sample_grid(results):
    s1 = results[1].obs["samples"]
    s2 = results[2].obs["samples"]
    assert s1["cycle"] == s2["cycle"]
    assert s1["rob"] == s2["rob"]
