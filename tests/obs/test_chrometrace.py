"""Unit tests for the Chrome-trace exporter and its self-validator."""

import json

import pytest

from repro.obs import (
    export_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _payload():
    """A small hand-built level-2 obs payload."""
    return {
        "level": 2,
        "sample_interval": 10,
        "samples": {
            "cycle": [0, 10, 20],
            "rob": [0, 5, 3],
            "llc_mshr": [1, 2, 0],
        },
        "mem_latency": {"dram/demand": {"requests": 2,
                                        "total_latency": 200,
                                        "merges": 1}},
        "mem_events": [
            [0, 100, 0x40, "dram", "demand", False],
            [5, 100, 0x40, "dram", "demand", True],
        ],
        "dropped_mem_events": 0,
        "uop_events": [
            (0, "F", 0), (1, "D", 0), (2, "I", 0), (5, "C", 0),
            (6, "R", 0),
            (1, "F", 1), (2, "D", 1), (9, "R", 1),
        ],
        "dropped_uop_events": 0,
    }


def test_export_is_valid_and_has_all_phases():
    trace = export_chrome_trace(_payload(), label="unit")
    assert validate_chrome_trace(trace) == []
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert {"M", "C", "b", "e", "X"} <= phases
    assert trace["otherData"]["label"] == "unit"


def test_counter_tracks_skip_the_cycle_column():
    trace = export_chrome_trace(_payload())
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    names = {e["name"] for e in counters}
    assert names == {"rob", "llc_mshr"}
    rob = [e for e in counters if e["name"] == "rob"]
    assert [e["ts"] for e in rob] == [0, 10, 20]
    assert [e["args"]["rob"] for e in rob] == [0, 5, 3]


def test_mem_requests_become_matched_async_slices():
    trace = export_chrome_trace(_payload())
    begins = [e for e in trace["traceEvents"] if e["ph"] == "b"]
    ends = [e for e in trace["traceEvents"] if e["ph"] == "e"]
    assert len(begins) == len(ends) == 2
    assert {e["id"] for e in begins} == {e["id"] for e in ends}
    assert begins[1]["args"]["merged"] is True


def test_uop_slices_use_dispatch_to_retire_and_cap():
    trace = export_chrome_trace(_payload(), max_uop_slices=1)
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["name"] == "uop 0"
    assert slices[0]["ts"] == 1          # D, not F
    assert slices[0]["dur"] == 5         # R at 6
    assert validate_chrome_trace(trace) == []


def test_level1_payload_exports_counters_only():
    payload = _payload()
    for key in ("mem_events", "uop_events", "dropped_mem_events",
                "dropped_uop_events"):
        payload.pop(key)
    payload["level"] = 1
    trace = export_chrome_trace(payload)
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert "C" in phases
    assert not phases & {"b", "e", "X"}
    assert validate_chrome_trace(trace) == []


@pytest.mark.parametrize("mutate,expect", [
    (lambda t: t.pop("traceEvents"), "traceEvents"),
    (lambda t: t["traceEvents"].append({"ph": "Z", "name": "x", "ts": 0}),
     "unknown phase"),
    (lambda t: t["traceEvents"].append({"ph": "C", "ts": 0}),
     "non-string name"),
    (lambda t: t["traceEvents"].append({"ph": "C", "name": "x"}),
     "non-numeric ts"),
    (lambda t: t["traceEvents"].append(
        {"ph": "X", "name": "x", "ts": 0}), "without numeric dur"),
    (lambda t: t["traceEvents"].append(
        {"ph": "e", "cat": "mem", "id": "nope", "name": "x", "ts": 0}),
     "no matching 'b'"),
    (lambda t: t["traceEvents"].append(
        {"ph": "b", "cat": "mem", "id": "open", "name": "x", "ts": 0}),
     "unclosed async"),
])
def test_validator_catches_malformed_traces(mutate, expect):
    trace = export_chrome_trace(_payload())
    mutate(trace)
    problems = validate_chrome_trace(trace)
    assert problems, f"expected a problem mentioning {expect!r}"
    assert any(expect in problem for problem in problems), problems


def test_write_chrome_trace_round_trips_via_json(tmp_path):
    path = tmp_path / "trace.json"
    trace = write_chrome_trace(_payload(), str(path), label="roundtrip")
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert loaded == trace
    assert validate_chrome_trace(loaded) == []
