"""Unit tests for counters, MLP tracking, ROB-stall profiling, SimResult."""

import warnings

import pytest

from repro.stats import (
    Counters,
    MLPTracker,
    RobStallProfiler,
    SimResult,
    UnknownCounterError,
    is_known,
    mark_critical_chains,
)


# ----------------------------------------------------------------- Counters
def test_counters_missing_reads_zero():
    c = Counters()
    assert c["nope"] == 0


def test_counters_bump_and_delta():
    # Keys must come from the registry: bump() rejects undeclared names.
    c = Counters()
    c.bump("fetch_uops")
    c.bump("fetch_uops", 4)
    snap = c.snapshot()
    c.bump("fetch_uops", 2)
    c.bump("rob_reads")
    delta = c.delta(snap)
    assert delta["fetch_uops"] == 2
    assert delta["rob_reads"] == 1
    assert "nope" not in delta


# ------------------------------------------------------------ key registry
def test_bump_rejects_undeclared_key_in_strict_mode(monkeypatch):
    monkeypatch.delenv("REPRO_STRICT", raising=False)
    with pytest.raises(UnknownCounterError, match="totally_bogus_counter"):
        Counters().bump("totally_bogus_counter")


def test_bump_warns_once_when_strictness_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_STRICT", "0")
    c = Counters()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        c.bump("lenient_only_counter")
        c.bump("lenient_only_counter")
    assert len(caught) == 1
    assert c["lenient_only_counter"] == 2


def test_dynamic_counter_families():
    assert is_known("dispatch_stall_rob_cycles")
    assert is_known("crit_dispatch_stall_rat_copy_cycles")
    assert not is_known("dispatch_stall_bogus_cycles")
    # dynamic keys bump fine once matched
    c = Counters()
    c.bump("dispatch_stall_lq_cycles", 3)
    assert c["dispatch_stall_lq_cycles"] == 3


def test_counters_merge():
    a = Counters({"x": 1})
    b = Counters({"x": 2, "y": 3})
    merged = a.merged_with(b)
    assert merged["x"] == 3 and merged["y"] == 3
    assert a["x"] == 1   # originals untouched


# ---------------------------------------------------------------- MLPTracker
def test_mlp_single_interval_is_one():
    t = MLPTracker()
    t.record(0, 100)
    assert t.mlp == pytest.approx(1.0)


def test_mlp_full_overlap():
    t = MLPTracker()
    t.record(0, 100)
    t.record(0, 100)
    t.record(0, 100)
    assert t.mlp == pytest.approx(3.0)


def test_mlp_partial_overlap():
    t = MLPTracker()
    t.record(0, 100)
    t.record(50, 150)
    # 200 cycles of latency over 150 busy cycles.
    assert t.mlp == pytest.approx(200 / 150)


def test_mlp_disjoint_intervals():
    t = MLPTracker()
    t.record(0, 100)
    t.record(200, 300)
    assert t.mlp == pytest.approx(1.0)


def test_mlp_ignores_uncounted_sources():
    t = MLPTracker()
    t.record(0, 100, source="prefetch")
    assert t.intervals == 0
    t.record(0, 100, source="runahead")
    assert t.intervals == 1


def test_mlp_ignores_empty_intervals():
    t = MLPTracker()
    t.record(100, 100)
    t.record(100, 50)
    assert t.intervals == 0
    assert t.mlp == 0.0


def test_mlp_delta_excludes_warmup():
    t = MLPTracker()
    t.record(0, 100)                 # warmup: MLP 1
    snap = t.snapshot()
    t.record(200, 300)
    t.record(200, 300)
    assert t.delta_mlp(snap) == pytest.approx(2.0)


# ----------------------------------------------------------- RobStallProfiler
def test_profiler_accumulates_weighted_occupancy():
    p = RobStallProfiler(10)
    p.on_stall_cycle(2, 5)
    p.on_stall_cycle(4, 7, weight=3)
    occupancy = p.occupancy_cycles()
    assert occupancy[2] == 1
    assert occupancy[4] == 4      # 1 + 3
    assert occupancy[7] == 3
    assert occupancy[9] == 0
    assert p.stall_cycles == 4


def test_profiler_critical_fraction():
    p = RobStallProfiler(4)
    p.on_stall_cycle(0, 3)        # all four uops resident for one cycle
    assert p.critical_fraction({0, 1}) == pytest.approx(0.5)
    assert p.critical_fraction(set()) == 0.0


def test_profiler_empty_is_zero():
    p = RobStallProfiler(4)
    assert p.critical_fraction({0}) == 0.0
    p.on_stall_cycle(3, 2)        # inverted range ignored
    assert p.stall_cycles == 0


# ------------------------------------------------------- mark_critical_chains
class _FakeUop:
    def __init__(self, src_deps=(), store_dep=-1, is_load=False):
        self.src_deps = tuple(src_deps)
        self.store_dep = store_dep
        self.is_load = is_load


def test_mark_critical_chains_follows_registers_and_memory():
    trace = [
        _FakeUop(),                                  # 0: store data producer
        _FakeUop(src_deps=(0,)),                     # 1: store (addr chain)
        _FakeUop(),                                  # 2: unrelated
        _FakeUop(src_deps=(), store_dep=1, is_load=True),   # 3: load<-store
        _FakeUop(src_deps=(3,)),                     # 4: consumer (not root)
    ]
    critical = mark_critical_chains(trace, roots=[3])
    assert critical == {0, 1, 3}


def test_mark_critical_chains_without_memory_deps():
    trace = [
        _FakeUop(),
        _FakeUop(src_deps=(0,)),
        _FakeUop(src_deps=(), store_dep=0, is_load=True),
    ]
    critical = mark_critical_chains(trace, roots=[2],
                                    include_memory_deps=False)
    assert critical == {2}


# ------------------------------------------------------------------ SimResult
def make_result(**kw):
    defaults = dict(benchmark="b", mode="baseline", cycles=1000,
                    retired_uops=2000, mlp=2.0,
                    dram_reads={"demand": 10}, dram_writes={"writeback": 2},
                    full_window_stall_cycles=100)
    defaults.update(kw)
    return SimResult(**defaults)


def test_ipc_and_traffic():
    r = make_result()
    assert r.ipc == 2.0
    assert r.total_traffic == 12


def test_ratios_against_baseline():
    base = make_result()
    faster = make_result(cycles=800, dram_reads={"demand": 11},
                         mlp=3.0)
    assert faster.speedup_over(base) == pytest.approx(1000 / 800)
    assert faster.traffic_ratio(base) == pytest.approx(13 / 12)
    assert faster.mlp_ratio(base) == pytest.approx(1.5)


def test_energy_ratio_handles_unset_energy():
    base = make_result()
    other = make_result()
    assert other.energy_ratio(base) == 1.0
    base.energy_nj = 100.0
    other.energy_nj = 90.0
    assert other.energy_ratio(base) == pytest.approx(0.9)


def test_zero_division_guards():
    base = make_result(cycles=0, retired_uops=0, dram_reads={},
                       dram_writes={})
    other = make_result()
    assert base.ipc == 0.0
    assert other.speedup_over(base) == 0.0
    assert other.traffic_ratio(base) == float("inf")
    assert make_result(dram_reads={}, dram_writes={}).traffic_ratio(base) == 1.0


def test_summary_mentions_key_fields():
    text = make_result().summary()
    assert "baseline" in text and "ipc=" in text
