"""Unit tests for the strict scalar metric helpers."""

import pytest

from repro.stats import MetricDomainError
from repro.stats.metrics import geomean, mean, percent_delta, ratio_of


def test_geomean_of_positive_values():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([3.0]) == pytest.approx(3.0)


def test_geomean_rejects_empty_input_with_typed_error():
    with pytest.raises(MetricDomainError) as excinfo:
        geomean([])
    assert "empty" in str(excinfo.value)
    assert excinfo.value.offending is None
    # The typed error is still a ValueError for legacy handlers.
    assert isinstance(excinfo.value, ValueError)


@pytest.mark.parametrize("bad", [0.0, -1.5])
def test_geomean_rejects_non_positive_values(bad):
    with pytest.raises(MetricDomainError) as excinfo:
        geomean([2.0, bad, 3.0])
    assert excinfo.value.offending == bad


def test_geomean_consumes_generators():
    with pytest.raises(MetricDomainError):
        geomean(v for v in ())
    assert geomean(float(v) for v in (2, 8)) == pytest.approx(4.0)


def test_mean_and_deltas():
    assert mean([]) == 0.0
    assert mean([1.0, 3.0]) == pytest.approx(2.0)
    assert percent_delta(1.061) == pytest.approx(6.1)
    assert percent_delta(0.965) == pytest.approx(-3.5)
    assert ratio_of(3.0, 2.0) == pytest.approx(1.5)
    assert ratio_of(3.0, 0.0) == 0.0
    assert ratio_of(3.0, 0.0, default=1.0) == 1.0
