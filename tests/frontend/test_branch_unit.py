"""Unit tests for the combined BranchUnit."""

from repro.frontend import BranchUnit
from repro.isa import Opcode, assemble, execute


def trace_of(text):
    return execute(assemble(text))


def test_conditional_branch_training_and_mispredicts():
    unit = BranchUnit(predictor="bimodal")
    trace = trace_of("""
        movi r1, 20
    loop:
        sub r1, r1, 1
        bnez r1, loop
        halt
    """)
    branches = [u for u in trace if u.is_cond_branch]
    outcomes = [unit.predict_and_train(u) for u in branches]
    # The last branch (loop exit) is the classic one-off mispredict.
    assert outcomes[-1].mispredicted
    # Steady-state loop back-edges become correctly predicted.
    mid = outcomes[5:-1]
    assert all(not o.mispredicted for o in mid)


def test_btb_miss_on_first_taken_branch_only():
    unit = BranchUnit(predictor="bimodal")
    trace = trace_of("""
        movi r1, 5
    loop:
        sub r1, r1, 1
        bnez r1, loop
        halt
    """)
    taken = [u for u in trace if u.is_cond_branch and u.taken]
    outcomes = [unit.predict_and_train(u) for u in taken]
    assert outcomes[0].btb_miss
    assert all(not o.btb_miss for o in outcomes[1:])


def test_call_ret_roundtrip_predicted_by_ras():
    unit = BranchUnit()
    trace = trace_of("""
        call fn
        call fn
        halt
    fn:
        ret
    """)
    rets = [u for u in trace if u.op == Opcode.RET]
    calls = [u for u in trace if u.op == Opcode.CALL]
    assert len(rets) == 2 and len(calls) == 2
    mispredicted = []
    for uop in trace:
        if uop.is_branch:
            mispredicted.append(unit.predict_and_train(uop).mispredicted)
    # RAS predicts both returns correctly.
    assert mispredicted.count(True) == 0


def test_jmp_never_mispredicts_direction():
    unit = BranchUnit()
    trace = trace_of("""
        jmp over
        nop
    over:
        halt
    """)
    jmp = next(u for u in trace if u.op == Opcode.JMP)
    outcome = unit.predict_and_train(jmp)
    assert not outcome.mispredicted
    assert outcome.btb_miss        # first sighting


def test_mpki():
    unit = BranchUnit(predictor="bimodal")
    assert unit.mpki(0) == 0.0
    unit.mispredicts = 5
    assert unit.mpki(1000) == 5.0
