"""Unit tests for the direction predictors."""

import random

import pytest

from repro.frontend import (
    BimodalPredictor,
    GsharePredictor,
    TAGEPredictor,
    make_predictor,
)


ALL_PREDICTORS = [BimodalPredictor, GsharePredictor, TAGEPredictor]


@pytest.mark.parametrize("cls", ALL_PREDICTORS)
def test_learns_always_taken(cls):
    p = cls()
    pc = 0x40
    for _ in range(16):
        pred = p.predict(pc)
        p.record_outcome(pred, True)
        p.update(pc, True)
    assert p.predict(pc) is True


@pytest.mark.parametrize("cls", ALL_PREDICTORS)
def test_learns_never_taken(cls):
    p = cls()
    pc = 0x80
    for _ in range(16):
        pred = p.predict(pc)
        p.record_outcome(pred, False)
        p.update(pc, False)
    assert p.predict(pc) is False


@pytest.mark.parametrize("cls", [GsharePredictor, TAGEPredictor])
def test_history_predictor_learns_alternating_pattern(cls):
    """T,N,T,N... is hard for bimodal, easy for history predictors."""
    p = cls()
    pc = 0x123
    outcome = True
    misses_late = 0
    for i in range(2000):
        pred = p.predict(pc)
        if i >= 1000 and pred != outcome:
            misses_late += 1
        p.update(pc, outcome)
        outcome = not outcome
    assert misses_late < 50   # nearly perfect after warmup


def test_tage_learns_long_correlated_pattern():
    """A pattern with period 12 needs longer history than gshare-lite."""
    p = TAGEPredictor()
    pattern = [True] * 11 + [False]
    misses_late = 0
    for i in range(6000):
        outcome = pattern[i % len(pattern)]
        pred = p.predict(0x77)
        if i >= 3000 and pred != outcome:
            misses_late += 1
        p.update(0x77, outcome)
    assert misses_late / 3000 < 0.10


@pytest.mark.parametrize("cls", ALL_PREDICTORS)
def test_random_branches_are_hard(cls):
    """Data-random branches should stay near 50% accuracy: these are the
    hard-to-predict branches CDF marks critical."""
    p = cls()
    rng = random.Random(42)
    wrong = 0
    trials = 4000
    for _ in range(trials):
        outcome = rng.random() < 0.5
        pred = p.predict(0x200)
        if pred != outcome:
            wrong += 1
        p.update(0x200, outcome)
    assert 0.30 < wrong / trials < 0.70


def test_accuracy_bookkeeping():
    p = BimodalPredictor()
    p.record_outcome(True, True)
    p.record_outcome(True, False)
    assert p.predictions == 2
    assert p.mispredictions == 1
    assert p.accuracy == pytest.approx(0.5)


def test_factory():
    assert isinstance(make_predictor("tage"), TAGEPredictor)
    assert isinstance(make_predictor("gshare"), GsharePredictor)
    assert isinstance(make_predictor("bimodal"), BimodalPredictor)
    with pytest.raises(ValueError):
        make_predictor("perceptron")


def test_bimodal_power_of_two_validation():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=1000)


def test_gshare_power_of_two_validation():
    with pytest.raises(ValueError):
        GsharePredictor(entries=1000)


def test_multiple_pcs_do_not_destructively_interfere_in_tage():
    p = TAGEPredictor()
    for _ in range(200):
        for pc, outcome in ((0x10, True), (0x20, False), (0x30, True)):
            p.predict(pc)
            p.update(pc, outcome)
    assert p.predict(0x10) is True
    assert p.predict(0x20) is False
    assert p.predict(0x30) is True
