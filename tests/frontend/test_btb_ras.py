"""Unit tests for the BTB and return address stack."""

import pytest

from repro.frontend import BTB, ReturnAddressStack


def test_btb_miss_then_hit():
    btb = BTB(entries=64, ways=4)
    assert btb.lookup(0x40) is None
    btb.update(0x40, 0x100)
    assert btb.lookup(0x40) == 0x100
    assert btb.hit_rate == pytest.approx(0.5)


def test_btb_update_refreshes_target():
    btb = BTB(entries=64, ways=4)
    btb.update(0x40, 0x100)
    btb.update(0x40, 0x200)
    assert btb.lookup(0x40) == 0x200


def test_btb_lru_eviction():
    btb = BTB(entries=8, ways=2)   # 4 sets
    # Three pcs mapping to set 0: 0, 4, 8.
    btb.update(0, 111)
    btb.update(4, 222)
    btb.lookup(0)         # refresh pc 0
    btb.update(8, 333)    # evicts pc 4
    assert btb.lookup(4) is None
    assert btb.lookup(0) == 111
    assert btb.lookup(8) == 333


def test_btb_validation():
    with pytest.raises(ValueError):
        BTB(entries=10, ways=4)
    with pytest.raises(ValueError):
        BTB(entries=12, ways=4)   # 3 sets, not a power of two


def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(depth=4)
    ras.push(10)
    ras.push(20)
    assert ras.pop() == 20
    assert ras.pop() == 10


def test_ras_underflow_returns_none():
    ras = ReturnAddressStack(depth=2)
    assert ras.pop() is None
    assert ras.underflows == 1


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_depth_validation():
    with pytest.raises(ValueError):
        ReturnAddressStack(depth=0)
