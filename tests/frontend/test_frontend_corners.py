"""Corner-case tests for frontend structures."""

from repro.frontend import BranchUnit
from repro.isa import Opcode, assemble, execute


def test_ret_without_matching_call_mispredicts():
    """RAS underflow: the return target cannot be predicted."""
    unit = BranchUnit()
    trace = execute(assemble("""
        jmp fn        ; enter without call: RAS stays empty
        nop
    fn:
        movi r1, 1
        halt
    """))
    # Manufacture a RET uop path via call-less program: build one with a
    # genuine ret after seeding the machine's return stack via call, then
    # replay only the ret against a fresh (empty-RAS) unit.
    called = execute(assemble("""
        call fn
        halt
    fn:
        ret
    """))
    ret = next(u for u in called if u.op == Opcode.RET)
    outcome = unit.predict_and_train(ret)
    assert outcome.mispredicted          # empty RAS -> no target


def test_deep_recursion_overflows_ras_gracefully():
    unit = BranchUnit(ras_depth=4)
    program = assemble("""
        movi r1, 8
        call fn
        halt
    fn:
        sub r1, r1, 1
        beqz r1, out
        call fn
    out:
        ret
    """)
    trace = execute(program)
    mispredicts = 0
    for uop in trace:
        if uop.is_branch:
            if unit.predict_and_train(uop).mispredicted:
                mispredicts += 1
    # 8-deep recursion through a 4-entry RAS: the inner returns predict,
    # the overflowed outer ones mispredict, and nothing crashes.
    rets = sum(1 for u in trace if u.op == Opcode.RET)
    assert rets == 8
    assert 0 < mispredicts < rets


def test_btb_aliasing_still_resolves_targets():
    unit = BranchUnit(btb_entries=16)
    # Many taken branches at aliasing pcs.
    program_text = ["movi r1, 4", "loop:"]
    for i in range(20):
        program_text.append(f"jmp l{i}")
        program_text.append(f"l{i}:")
        program_text.append("nop")
    program_text += ["sub r1, r1, 1", "bnez r1, loop", "halt"]
    trace = execute(assemble("\n".join(program_text)))
    misses = 0
    for uop in trace:
        if uop.is_branch:
            outcome = unit.predict_and_train(uop)
            misses += outcome.btb_miss
    # Aliasing evicts entries so some re-misses happen, but the unit
    # keeps functioning and eventually mostly hits.
    assert misses < sum(1 for u in trace if u.is_branch)
