"""Unit tests for the analytical throughput model."""

import pytest

from repro.analytic import AnalyticModel, TraceProfile, predict_ipc
from repro.harness.runner import config_for_mode, load_workload
from repro.harness.sweep import (
    llc_size_knob,
    memory_speed_knob,
    mshr_knob,
)

SMALL = 0.1


@pytest.fixture(scope="module")
def mcf_profile():
    workload = load_workload("mcf", SMALL)
    return TraceProfile.from_trace(workload.trace(), name="mcf")


def test_prediction_shape(mcf_profile):
    prediction = AnalyticModel().predict(mcf_profile,
                                         config_for_mode("baseline"))
    assert prediction.cycles >= 1.0
    assert prediction.ipc == pytest.approx(
        mcf_profile.uops / prediction.cycles)
    assert prediction.bottleneck in prediction.bounds
    assert all(value >= 0.0 for value in prediction.bounds.values())
    assert predict_ipc(mcf_profile, config_for_mode("baseline")) == \
        pytest.approx(prediction.ipc)


def test_faster_memory_never_hurts(mcf_profile):
    slow = memory_speed_knob(config_for_mode("baseline"), 2.0)
    fast = memory_speed_knob(config_for_mode("baseline"), 0.5)
    assert predict_ipc(mcf_profile, fast) >= \
        predict_ipc(mcf_profile, slow)


def test_more_mshrs_never_hurt(mcf_profile):
    starved = mshr_knob(config_for_mode("baseline"), 1)
    roomy = mshr_knob(config_for_mode("baseline"), 16)
    assert predict_ipc(mcf_profile, roomy) >= \
        predict_ipc(mcf_profile, starved)


def test_bigger_llc_never_hurts(mcf_profile):
    small = llc_size_knob(config_for_mode("baseline"), 128 * 1024)
    big = llc_size_knob(config_for_mode("baseline"), 8 * 1024 * 1024)
    assert predict_ipc(mcf_profile, big) >= \
        predict_ipc(mcf_profile, small)


def test_mode_uplift_is_modest(mcf_profile):
    """CDF/PRE help only through MLP — bounded, never a regression."""
    base = predict_ipc(mcf_profile, config_for_mode("baseline"))
    cdf = predict_ipc(mcf_profile, config_for_mode("cdf"))
    pre = predict_ipc(mcf_profile, config_for_mode("pre"))
    assert base <= cdf <= base * 1.25
    assert base <= pre <= base * 1.25


def test_empty_profile_predicts_without_dividing_by_zero():
    prediction = AnalyticModel().predict(TraceProfile(name="empty"),
                                         config_for_mode("baseline"))
    assert prediction.cycles >= 1.0
    assert prediction.ipc > 0.0
