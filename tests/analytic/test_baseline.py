"""Regression tests against the committed analytic error bands.

``benchmarks/analytic_baseline.json`` pins, for every suite kernel and
mode, the cycle-accurate IPC, the analytic prediction, and the signed
error at the perf-suite scale.  Two properties are enforced:

* the **pinned** perf-suite kernels stay inside the accuracy gate
  (|error| <= gate_pct) — the model may not silently degrade on the
  kernels its calibration constants were fitted against;
* the analytic predictions themselves are **reproducible**: profiling
  is deterministic, so a drifted prediction means the model or profiler
  changed and the baseline (and its calibration) must be regenerated
  deliberately, not by accident.

Held-out kernels are recorded in the same file but only sanity-checked
(the model was never fitted on them; their errors are informational).
"""

import json
from pathlib import Path

import pytest

from repro.analytic import TraceProfile, predict_ipc
from repro.harness.runner import config_for_mode, load_workload
from repro.workloads import suite_names

BASELINE = (Path(__file__).resolve().parents[2]
            / "benchmarks" / "analytic_baseline.json")


@pytest.fixture(scope="module")
def baseline():
    with open(BASELINE) as handle:
        return json.load(handle)


def test_baseline_covers_the_whole_suite(baseline):
    assert baseline["schema"] == 1
    assert set(baseline["kernels"]) == set(suite_names())
    for name, by_mode in baseline["kernels"].items():
        assert set(by_mode) == {"baseline", "cdf", "pre"}, name
        for mode, band in by_mode.items():
            assert band["sim_ipc"] > 0
            assert band["analytic_ipc"] > 0


def test_pinned_kernels_stay_inside_the_accuracy_gate(baseline):
    gate = baseline["gate_pct"]
    for name in baseline["pinned"]:
        for mode, band in baseline["kernels"][name].items():
            assert abs(band["error_pct"]) <= gate, (
                f"{name}/{mode}: committed error {band['error_pct']}% "
                f"outside the {gate}% gate — recalibrate the model")


def test_pinned_predictions_reproduce(baseline):
    scale = baseline["scale"]
    seed = baseline["seed"]
    for name in baseline["pinned"]:
        profile = TraceProfile.from_trace(
            load_workload(name, scale, seed).trace(), name=name)
        for mode, band in baseline["kernels"][name].items():
            ipc = predict_ipc(profile, config_for_mode(mode))
            assert ipc == pytest.approx(band["analytic_ipc"],
                                        abs=5e-4), (
                f"{name}/{mode}: analytic prediction drifted from the "
                f"committed baseline — regenerate "
                f"benchmarks/analytic_baseline.json (which re-runs the "
                f"error-band validation) if the change is intentional")
