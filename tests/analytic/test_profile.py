"""Unit tests for the config-independent trace profiler."""

import pytest

from repro.analytic import PROFILE_SCHEMA_VERSION, TraceProfile
from repro.analytic.profile import COLD_BUCKET, PREFETCHABLE_STRIDE_BYTES
from repro.isa.dynuop import DynUop


def uop(seq, pc=0, exec_class="alu", exec_lat=1, is_load=False,
        is_store=False, is_branch=False, is_cond_branch=False,
        mem_addr=None, taken=False, src_deps=(), store_dep=-1):
    return DynUop(seq=seq, pc=pc, op=0, dst=1, srcs=(),
                  exec_lat=exec_lat, is_load=is_load, is_store=is_store,
                  is_branch=is_branch, is_cond_branch=is_cond_branch,
                  mem_addr=mem_addr, taken=taken, next_pc=pc + 1,
                  src_deps=tuple(src_deps), store_dep=store_dep,
                  exec_class=exec_class)


def test_class_counts_and_basic_tallies():
    trace = [
        uop(0, exec_class="alu"),
        uop(1, exec_class="fp"),
        uop(2, exec_class="load", is_load=True, mem_addr=0),
        uop(3, exec_class="store", is_store=True, mem_addr=64),
        uop(4, exec_class="muldiv", exec_lat=12),
    ]
    profile = TraceProfile.from_trace(trace, name="synthetic")
    assert profile.name == "synthetic"
    assert profile.uops == 5
    assert profile.class_counts["alu"] == 1
    assert profile.class_counts["fp"] == 1
    assert profile.class_counts["load"] == 1
    assert profile.class_counts["store"] == 1
    assert profile.class_counts["muldiv"] == 1
    assert profile.loads == 1
    assert profile.stores == 1
    assert profile.data_lines == 2


def test_forwarded_loads_skip_the_reuse_histogram():
    trace = [
        uop(0, is_store=True, exec_class="store", mem_addr=128),
        uop(1, is_load=True, exec_class="load", mem_addr=128,
            store_dep=0),
    ]
    profile = TraceProfile.from_trace(trace)
    assert profile.forwarded_loads == 1
    assert profile.demand_loads == 0
    assert profile.reuse_histogram == {}


def test_cold_loads_land_in_the_cold_bucket():
    trace = [uop(i, is_load=True, exec_class="load", mem_addr=i * 64)
             for i in range(4)]
    profile = TraceProfile.from_trace(trace)
    assert profile.reuse_histogram == {COLD_BUCKET: 4}
    # Cold misses never count as capacity hits, whatever the capacity.
    assert profile.reuse_split(1 << 30, 1 << 40) == (0, 0, 4)


def test_reuse_split_partitions_by_gap():
    # Touch line 0, then 2 other lines, then line 0 again: gap of 3.
    trace = [
        uop(0, is_load=True, exec_class="load", mem_addr=0),
        uop(1, is_load=True, exec_class="load", mem_addr=64),
        uop(2, is_load=True, exec_class="load", mem_addr=128),
        uop(3, is_load=True, exec_class="load", mem_addr=0),
    ]
    profile = TraceProfile.from_trace(trace)
    # 3 cold + one reuse with gap 3 (bucket 2).
    assert profile.reuse_histogram[COLD_BUCKET] == 3
    assert profile.reuse_histogram[2] == 1
    l1, llc, dram = profile.reuse_split(16, 1024)
    assert (l1, llc, dram) == (1, 0, 3)
    l1, llc, dram = profile.reuse_split(2, 1024)
    assert (l1, llc, dram) == (0, 1, 3)


def test_stride_classification_small_vs_large():
    small = [uop(i, pc=5, is_load=True, exec_class="load",
                 mem_addr=i * 64) for i in range(8)]
    profile = TraceProfile.from_trace(small)
    # The stride is confirmed from the third access on.
    assert profile.strided_loads == 6
    assert profile.large_strided_loads == 0
    assert profile.strided_fraction == pytest.approx(6 / 8)

    big_stride = PREFETCHABLE_STRIDE_BYTES * 16
    large = [uop(i, pc=5, is_load=True, exec_class="load",
                 mem_addr=i * big_stride) for i in range(8)]
    profile = TraceProfile.from_trace(large)
    assert profile.strided_loads == 0
    assert profile.large_strided_loads == 6
    assert profile.large_stride_fraction == pytest.approx(6 / 8)


def test_branch_direction_bounds():
    # One branch PC, outcomes T T T N T N: majority=T so static bound
    # is 2; transitions T->N->T->N = 3 flips.
    outcomes = [True, True, True, False, True, False]
    trace = [uop(i, pc=7, is_branch=True, is_cond_branch=True,
                 taken=taken) for i, taken in enumerate(outcomes)]
    profile = TraceProfile.from_trace(trace)
    assert profile.branches == 6
    assert profile.cond_branches == 6
    assert profile.taken_branches == 4
    assert profile.static_branch_misses == 2
    assert profile.flip_branch_misses == 3
    assert profile.predicted_branch_misses() == 2


def test_critical_path_follows_the_longest_chain():
    # A 3-uop dependent chain (latency 1 each) beats two independent
    # uops; the chain's cold load contributes to the far class.
    trace = [
        uop(0, exec_lat=1),
        uop(1, is_load=True, exec_class="load", mem_addr=0, exec_lat=1,
            src_deps=(0,)),
        uop(2, exec_lat=1, src_deps=(1,)),
        uop(3, exec_lat=1),
    ]
    profile = TraceProfile.from_trace(trace)
    assert profile.critical_path_cycles == 3
    assert profile.critical_path_far == 1
    assert profile.critical_path_near == 0
    assert profile.critical_path_loads == 1


def test_round_trip_through_dict():
    trace = [
        uop(0, is_load=True, exec_class="load", mem_addr=0),
        uop(1, pc=3, is_branch=True, is_cond_branch=True, taken=True),
        uop(2, is_store=True, exec_class="store", mem_addr=0,
            src_deps=(0,)),
    ]
    profile = TraceProfile.from_trace(trace, name="rt")
    payload = profile.to_dict()
    assert payload["schema_version"] == PROFILE_SCHEMA_VERSION
    restored = TraceProfile.from_dict(payload)
    assert restored == profile


def test_from_dict_rejects_other_schema_versions():
    payload = TraceProfile.from_trace([], name="x").to_dict()
    payload["schema_version"] = PROFILE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="rebuild"):
        TraceProfile.from_dict(payload)
