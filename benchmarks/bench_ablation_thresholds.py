"""Ablation (Sec. 3.2) — adaptive strict/permissive CCT thresholds.

Paper: a stricter threshold keeps chains sparse (bigger effective window)
but 'some benchmarks benefit from greater coverage', hence the two
counters with runtime selection. Disabling the permissive fallback must
not help, and hurts coverage-hungry benchmarks.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import ablation_thresholds, format_ablation_thresholds

SUBSET = ("astar", "milc", "nab", "bzip", "soplex", "lbm")


def test_ablation_thresholds(bench_once):
    data = bench_once(ablation_thresholds, names=SUBSET, scale=BENCH_SCALE)
    save_table("ablation_thresholds", format_ablation_thresholds(data))

    adaptive = data["geomean"]["adaptive"]
    strict = data["geomean"]["strict_only"]
    assert adaptive >= strict - 0.005
    assert adaptive > 1.02
