"""Ablation (Sec. 3.5) — dynamic vs static backend partitioning.

Paper: 'the ability to dynamically pick a partition size significantly
improves the performance of CDF' — a static 50/50 split starves one
stream or the other depending on the phase.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import ablation_partitioning, format_ablation_partitioning

SUBSET = ("astar", "milc", "bzip", "nab", "mcf", "lbm")


def test_ablation_partitioning(bench_once):
    data = bench_once(ablation_partitioning, names=SUBSET,
                      scale=BENCH_SCALE)
    save_table("ablation_partitioning", format_ablation_partitioning(data))

    dynamic = data["geomean"]["dynamic"]
    static = data["geomean"]["static"]
    # Dynamic partitioning competes with the best static split overall
    # (and wins where the static split is wrong, e.g. lbm/milc); both
    # keep CDF profitable.
    assert dynamic >= static - 0.015
    assert dynamic > 1.02
    assert data["dynamic"]["milc"] >= data["static"]["milc"] - 0.005
    assert data["dynamic"]["lbm"] >= data["static"]["lbm"] - 0.005
