"""Extension — sensitivity to the memory system (paper Sec. 2.4 (a)).

The paper argues runahead's benefit 'gets worse with better memory
systems' because shorter stalls leave less time for runahead, while CDF
is unaffected by stall duration. We sweep main-memory speed and check
that PRE's advantage erodes faster than CDF's as memory gets faster.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness.sweep import geomean_speedups, memory_speed_knob, sweep
from repro.harness.tables import percent, render_table

#: Benchmarks with real stall windows for PRE to exploit.
SUBSET = ("astar", "milc", "zeusmp", "GemsFDTD")

#: 1.0 = DDR4-2400; smaller = faster memory.
FACTORS = (1.0, 0.5, 0.25)


def run_sensitivity(scale):
    results = sweep(memory_speed_knob, FACTORS, SUBSET, scale=scale)
    return geomean_speedups(results)


def test_extension_memory_sensitivity(bench_once):
    data = bench_once(run_sensitivity, BENCH_SCALE)
    rows = [(f"{factor:.2f}x latency", percent(data[factor]["cdf"]),
             percent(data[factor]["pre"]))
            for factor in FACTORS]
    save_table("extension_memory_sensitivity", render_table(
        "Extension — speedup vs memory speed (PRE needs long stalls)",
        ("memory timing", "CDF", "PRE"), rows))

    # PRE's gain erodes with faster memory...
    assert data[0.25]["pre"] < data[1.0]["pre"]
    # ...and erodes by more than CDF loses (CDF is 'unaffected by this').
    pre_loss = data[1.0]["pre"] - data[0.25]["pre"]
    cdf_loss = data[1.0]["cdf"] - data[0.25]["cdf"]
    assert pre_loss > cdf_loss - 0.01
    # Both still help at nominal memory speed.
    assert data[1.0]["cdf"] > 1.0
    assert data[1.0]["pre"] > 1.0
