"""Shared configuration for the figure-regeneration benchmarks.

Each bench runs its experiment exactly once (``benchmark.pedantic`` with a
single round — a full-suite simulation sweep is the unit of work being
timed) and writes the paper-style table to ``benchmarks/results/``.

``REPRO_BENCH_SCALE`` scales workload iteration counts; the default of
0.4 keeps the full harness in the minutes range. Use 1.0 to reproduce
the numbers quoted in EXPERIMENTS.md.
"""

import os
import pathlib

import pytest

#: Workload scale used by every figure bench. Larger scales give the CDF
#: training structures (10k-uop fill intervals) more steady-state time and
#: reproduce the paper's magnitudes more closely.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))

#: Where rendered tables are written.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
