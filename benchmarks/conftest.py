"""Shared configuration for the figure-regeneration benchmarks.

Each bench runs its experiment exactly once (``benchmark.pedantic`` with a
single round — a full-suite simulation sweep is the unit of work being
timed) and writes the paper-style table to ``benchmarks/results/``.

``REPRO_BENCH_SCALE`` scales workload iteration counts; the default of
0.4 keeps the full harness in the minutes range. Use 1.0 to reproduce
the numbers quoted in EXPERIMENTS.md.

The figure drivers run through the experiment engine
(``repro.harness.engine``), so the bench harness honours the engine's
environment variables too:

* ``REPRO_JOBS=N`` fans simulations out over N worker processes.
* ``REPRO_CACHE_DIR`` relocates the persistent result cache.
* ``REPRO_NO_CACHE=1`` forces every simulation to re-execute — set this
  when the *timings* matter (a warm cache turns a figure bench into a
  cache read, see docs/harness.md).

A per-session engine summary (jobs, cache hits, simulated count) is
printed at the end of the run so cache-assisted timings are visible.
"""

import os
import pathlib

import pytest

from repro.harness import get_engine

#: Workload scale used by every figure bench. Larger scales give the CDF
#: training structures (10k-uop fill intervals) more steady-state time and
#: reproduce the paper's magnitudes more closely.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))

#: Where rendered tables are written.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture(scope="session", autouse=True)
def _engine_session_summary():
    """Report engine accounting once the bench session finishes, so it
    is obvious when a figure's timing was served from the result cache
    rather than simulated."""
    yield
    engine = get_engine()
    if engine.stats.total:
        print(f"\n{engine.summary()}")
