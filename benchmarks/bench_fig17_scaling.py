"""Fig. 17 — CDF and baseline cores across ROB sizes.

Paper: with larger windows CDF keeps its advantage (more critical loads
packed together); a baseline scaled to CDF's area (~+3.2%) yields only
+3.7% IPC while costing more energy. We sweep ROB sizes with the other
window structures scaled proportionately and check the relative shape.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import fig17_scaling, format_fig17

#: A representative subset (CDF-winners + stencil + neutral) keeps the
#: 2-mode x 4-size sweep tractable.
SUBSET = ("astar", "milc", "nab", "lbm", "zeusmp", "sphinx")
ROB_SIZES = (192, 256, 352, 512)


def test_fig17_scaling(bench_once):
    data = bench_once(fig17_scaling, rob_sizes=ROB_SIZES, names=SUBSET,
                      scale=BENCH_SCALE)
    save_table("fig17_scaling", format_fig17(data))

    ipc = data["ipc"]
    # Bigger baseline windows help, with diminishing returns.
    assert ipc[(512, "baseline")] > ipc[(192, "baseline")]
    small_step = ipc[(256, "baseline")] / ipc[(192, "baseline")]
    big_step = ipc[(512, "baseline")] / ipc[(352, "baseline")]
    assert small_step > big_step * 0.98   # diminishing (or flat) returns

    # CDF beats the equal-size baseline at every window size.
    for rob in ROB_SIZES:
        assert ipc[(rob, "cdf")] > ipc[(rob, "baseline")] * 0.995, rob

    # The paper's area argument: CDF at 352 beats a baseline scaled up
    # by far more than CDF's ~3.2% area (512 entries is +45%).
    assert ipc[(352, "cdf")] > ipc[(352, "baseline")]
    cdf_gain = ipc[(352, "cdf")] / ipc[(352, "baseline")]
    scaled_gain = ipc[(512, "baseline")] / ipc[(352, "baseline")]
    assert cdf_gain > scaled_gain - 0.02

    # Energy: the scaled-up baseline consumes more energy than CDF at 352.
    energy = data["energy"]
    assert energy[(512, "baseline")] > energy[(352, "cdf")] * 0.98
