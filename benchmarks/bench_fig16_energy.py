"""Fig. 16 — energy relative to the baseline.

Paper: CDF *reduces* energy 3.5% (runtime drops; its structures add only
~2% overhead), while PRE *increases* energy 3.7% (extra traffic plus
duplicate instructions executed twice).
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import fig16_energy, format_fig16


def test_fig16_energy(bench_once):
    data = bench_once(fig16_energy, scale=BENCH_SCALE)
    save_table("fig16_energy", format_fig16(data))

    cdf_geo = data["geomean"]["cdf"]
    pre_geo = data["geomean"]["pre"]
    # Signs match the paper: CDF saves energy, PRE costs energy.
    assert cdf_geo < 1.0, f"CDF should save energy, got {cdf_geo:.3f}"
    assert pre_geo > 1.0, f"PRE should cost energy, got {pre_geo:.3f}"
    assert pre_geo - cdf_geo > 0.01
    # CDF's biggest savings come on its biggest speedups.
    biggest_saving = min(data["cdf"].values())
    assert biggest_saving < 0.99
