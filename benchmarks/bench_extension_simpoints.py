"""Extension — the 'Note on PRE Results' methodology study (Sec. 4.2).

The paper attributes much of the gap between its PRE numbers (+2.6%) and
prior work's to SimPoint selection: prior Runahead papers evaluate a
single (memory-intensive) SimPoint, while this paper averages up to five,
some of which are not memory intensive. We reproduce the effect with a
two-phase program: evaluating only the memory phase (the single-SimPoint
methodology) reports a much larger PRE benefit than evaluating the whole
program.
"""

from conftest import BENCH_SCALE, save_table

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness.tables import percent, render_table
from repro.runahead import PREPipeline
from repro.workloads.phased import (
    build_phased,
    build_phased_compute_only,
    build_phased_memory_only,
)


def _speedups(workload):
    trace = workload.trace()
    warmup = workload.warmup_uops()

    def run(mode, pipeline_cls, needs_program):
        config = getattr(SimConfig, f"with_{mode}")() \
            if mode != "baseline" else SimConfig.baseline()
        config.stats_warmup_uops = warmup
        args = (trace, config) + (
            (workload.program,) if needs_program else ())
        return pipeline_cls(*args).run()

    base = run("baseline", BaselinePipeline, False)
    cdf = run("cdf", CDFPipeline, True)
    pre = run("pre", PREPipeline, True)
    return cdf.speedup_over(base), pre.speedup_over(base)


def run_simpoint_study(scale):
    out = {}
    for label, builder in (
            ("memory SimPoint only", build_phased_memory_only),
            ("compute SimPoint only", build_phased_compute_only),
            ("whole program", build_phased)):
        out[label] = _speedups(builder(scale=scale))
    return out


def test_extension_simpoint_methodology(bench_once):
    data = bench_once(run_simpoint_study, max(0.8, BENCH_SCALE))
    table = render_table(
        "Extension — SimPoint selection (Sec. 4.2 'Note on PRE Results')",
        ("evaluated region", "CDF", "PRE"),
        [(label, percent(cdf), percent(pre))
         for label, (cdf, pre) in data.items()])
    save_table("extension_simpoints", table)

    mem_cdf, mem_pre = data["memory SimPoint only"]
    cmp_cdf, cmp_pre = data["compute SimPoint only"]
    all_cdf, all_pre = data["whole program"]

    # The memory-only SimPoint overstates both techniques...
    assert mem_pre > all_pre
    assert mem_cdf > all_cdf
    # ...the compute SimPoint gives neither anything...
    assert abs(cmp_pre - 1.0) < 0.03
    assert abs(cmp_cdf - 1.0) < 0.03
    # ...and the whole-program number sits between the two.
    assert cmp_pre - 0.02 <= all_pre <= mem_pre
