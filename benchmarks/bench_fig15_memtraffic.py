"""Fig. 15 — memory traffic relative to the baseline.

Paper: CDF's critical uops are part of the main instruction stream, so it
adds essentially no traffic; PRE's speculative chains add ~4% more
traffic than CDF overall (wrong addresses + duplicated fetches).
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import fig15_traffic, format_fig15


def test_fig15_memtraffic(bench_once):
    data = bench_once(fig15_traffic, scale=BENCH_SCALE)
    save_table("fig15_memtraffic", format_fig15(data))

    cdf_geo = data["geomean"]["cdf"]
    pre_geo = data["geomean"]["pre"]
    # CDF stays within a whisker of baseline traffic on every benchmark.
    assert 0.97 < cdf_geo < 1.03
    for name, ratio in data["cdf"].items():
        assert ratio < 1.05, f"CDF added traffic on {name}: {ratio:.2f}"
    # PRE generates extra traffic, and more than CDF (paper: ~4% more).
    assert pre_geo > cdf_geo + 0.01
    worst = max(data["pre"].values())
    assert worst > 1.05, "some benchmark should show PRE's traffic cost"
