"""Extension — criticality beyond loads (paper Sec. 6).

'Criticality driven fetch is not fundamentally limited to loads and can
be expanded to any instructions in the program that are critical ... CDF
can improve the performance of most programs that show better
performance with a larger OoO window.'

The kernel here is bound by independent long-latency FP chains (serial
FDIV sequences) rather than cache misses: a bigger window overlaps more
chains. Load-only CDF sees nothing critical; with long-latency roots
enabled, CDF packs the chains the way it packs misses.
"""

from conftest import BENCH_SCALE, save_table

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness.tables import percent, render_table
from repro.isa import ProgramBuilder, execute


def fdiv_chain_kernel(iters: int, chain_len: int = 12,
                      noncrit: int = 30):
    """Independent serial-FDIV chains inside a light loop body."""
    b = ProgramBuilder()
    b.movi(1, iters)
    b.label("loop")
    b.movi(4, 17)
    for _ in range(chain_len):
        b.fdiv(4, 4, imm=3)
    b.fadd(5, 5, 4)
    for i in range(noncrit):
        b.movi(20 + i % 6, 7 + i)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


def run_longlat_study(scale):
    iters = max(600, int(1000 * scale))
    program = fdiv_chain_kernel(iters)
    trace = execute(program)
    warmup = len(trace) // 3

    base_cfg = SimConfig.baseline()
    base_cfg.stats_warmup_uops = warmup
    base = BaselinePipeline(trace, base_cfg).run()

    loads_cfg = SimConfig.with_cdf()
    loads_cfg.stats_warmup_uops = warmup
    loads_only = CDFPipeline(trace, loads_cfg, program).run()

    general_cfg = SimConfig.with_cdf()
    general_cfg.cdf.mark_longlat_critical = True
    general_cfg.stats_warmup_uops = warmup
    general = CDFPipeline(trace, general_cfg, program).run()

    return {
        "base_ipc": base.ipc,
        "loads_only": loads_only.speedup_over(base),
        "general": general.speedup_over(base),
        "roots": general.counters["longlat_roots"],
        "mode_cycles": general.counters["cdf_mode_cycles"],
        "violations": general.counters["dependence_violations"],
    }


def test_extension_longlat_criticality(bench_once):
    data = bench_once(run_longlat_study, BENCH_SCALE)
    table = render_table(
        "Extension — criticality beyond loads (paper Sec. 6)",
        ("configuration", "speedup"),
        [("baseline (FDIV-chain bound)", f"IPC {data['base_ipc']:.2f}"),
         ("CDF, load criticality only", percent(data["loads_only"])),
         ("CDF + long-latency roots", percent(data["general"]))])
    save_table("extension_longlat_criticality", table)

    # Load-only CDF finds nothing critical in a miss-free kernel...
    assert abs(data["loads_only"] - 1.0) < 0.02
    # ...while generalised criticality packs the chains for a big win.
    assert data["general"] > 1.2
    assert data["roots"] > 0
    assert data["mode_cycles"] > 0
    assert data["violations"] == 0
