"""Fig. 14 — MLP relative to the baseline core.

Paper: both techniques raise MLP, but 'a large percentage of the
increased MLP for PRE is due to wrong-path loads or loads with incorrect
dependence chains which do not contribute to improved performance',
whereas CDF's extra parallelism is almost all real. We check that by
relating each technique's MLP gain to its speedup.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import fig13_speedup, fig14_mlp, format_fig14, geomean


def test_fig14_mlp(bench_once):
    data = bench_once(fig14_mlp, scale=BENCH_SCALE)
    save_table("fig14_mlp", format_fig14(data))
    speed = fig13_speedup(scale=BENCH_SCALE)   # cached comparison

    # Both techniques expose more MLP overall.
    assert data["geomean"]["cdf"] >= 1.0
    assert data["geomean"]["pre"] >= 1.0

    # CDF's MLP translates into speedup; much of PRE's does not. Measure
    # 'useful fraction' as speedup gain over MLP gain, across benchmarks
    # where the technique raised MLP by 10%+.
    def useful_fraction(kind):
        total, converted = 0.0, 0.0
        for name, mlp_ratio in data[kind].items():
            if mlp_ratio < 1.10:
                continue
            total += mlp_ratio - 1.0
            converted += max(0.0, speed[kind][name] - 1.0)
        return converted / total if total else 1.0

    cdf_useful = useful_fraction("cdf")
    pre_useful = useful_fraction("pre")
    assert cdf_useful > pre_useful, (
        f"CDF's MLP should be more useful: {cdf_useful:.2f} vs "
        f"{pre_useful:.2f}")

    # At least one neutral benchmark shows PRE's hallmark: inflated MLP
    # with no speedup to show for it.
    inflated = [name for name, ratio in data["pre"].items()
                if ratio > 1.3 and speed["pre"][name] < 1.02]
    assert inflated, "expected PRE MLP inflation without speedup somewhere"
