"""Fig. 1 — distribution of instructions in the ROB during full-window
stalls on the baseline core.

The paper's claim: critical-path instructions account for only 10%-40% of
the dynamic footprint in typical programs, so during stalls the window is
mostly non-critical work — the inefficiency CDF attacks. Dense stencils
(zeusmp family) sit above that band, which is exactly why CDF has nothing
to skip there.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import fig01_rob_distribution, format_fig01
from repro.workloads import PRE_FAVOURABLE, suite_names


def test_fig01_rob_distribution(bench_once):
    fractions = bench_once(fig01_rob_distribution, scale=BENCH_SCALE)
    save_table("fig01_rob_distribution", format_fig01(fractions))

    stalling = {name: frac for name, frac in fractions.items() if frac > 0}
    assert len(stalling) >= 8, "most benchmarks should see window stalls"
    sparse = [frac for name, frac in stalling.items()
              if name not in PRE_FAVOURABLE]
    # The paper's headline: the ROB is mostly non-critical during stalls
    # for the sparse-chain benchmarks.
    assert sum(sparse) / len(sparse) < 0.5
    dense = [frac for name, frac in stalling.items()
             if name in PRE_FAVOURABLE]
    if dense and sparse:
        assert max(sparse) <= max(dense) + 0.5  # dense family sits higher
