"""Extension — the MSHR ceiling on window expansion.

CDF's claim is that critical instructions in the ROB can 'span a
sequential instruction window larger than the size of the ROB'; the
*physical* limit on the MLP that window exposes is the miss-buffer
capacity. Sweeping the MSHR count shows the baseline barely reacts
(its window can only expose a handful of concurrent misses anyway)
while CDF converts every extra MSHR into speedup — evidence that CDF,
not the memory system, was the binding constraint.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness.sweep import geomean_speedups, mshr_knob, sweep
from repro.harness.tables import percent, render_table

#: Sparse-chain benchmarks where window expansion pays.
SUBSET = ("astar", "milc")

MSHRS = (4, 8, 16, 32)


def run_mshr_study(scale):
    results = sweep(mshr_knob, MSHRS, SUBSET, modes=("baseline", "cdf"),
                    scale=scale)
    reduced = geomean_speedups(results)
    # Also collect baseline MLP per point for the table.
    mlp = {count: max(results[count]["baseline"][name].mlp
                      for name in SUBSET)
           for count in MSHRS}
    return reduced, mlp


def test_extension_mshr_scaling(bench_once):
    reduced, mlp = bench_once(run_mshr_study, BENCH_SCALE)
    rows = [(f"{count} MSHRs", f"{mlp[count]:.1f}",
             percent(reduced[count]["cdf"]))
            for count in MSHRS]
    save_table("extension_mshr_scaling", render_table(
        "Extension — CDF speedup vs miss-buffer capacity",
        ("L1D MSHRs", "max base MLP", "CDF speedup"), rows))

    # CDF's gain grows with MSHR capacity (the ceiling it pushes against).
    assert reduced[32]["cdf"] > reduced[4]["cdf"]
    assert reduced[16]["cdf"] >= reduced[4]["cdf"]
    # With a starved miss buffer there is little left for CDF to win.
    assert reduced[4]["cdf"] < reduced[32]["cdf"]
