"""Table 1 — simulation parameters.

Checks that the default configuration equals the paper's Table 1 and
renders it; also verifies the CDF area overhead lands near the paper's
3.2%.
"""

from conftest import save_table

from repro.config import SimConfig
from repro.energy import EnergyModel
from repro.harness import table1_text


def test_table1_config(bench_once):
    text = bench_once(table1_text)
    save_table("table1_config", text)

    cfg = SimConfig.baseline()
    # Core (Table 1).
    assert cfg.core.freq_ghz == 3.2
    assert cfg.core.issue_width == 6
    assert cfg.core.rob_size == 352
    assert cfg.core.rs_size == 160
    assert cfg.core.lq_size == 128
    assert cfg.core.sq_size == 72
    # Caches.
    assert cfg.l1i.size_bytes == 32 * 1024 and cfg.l1i.ways == 8
    assert cfg.l1d.latency == 2
    assert cfg.llc.size_bytes == 1024 * 1024 and cfg.llc.ways == 16
    assert cfg.llc.latency == 18
    assert cfg.llc.line_bytes == 64
    # Memory.
    assert cfg.dram.channels == 2 and cfg.dram.ranks == 1
    assert cfg.dram.bank_groups == 4 and cfg.dram.banks_per_group == 4
    assert (cfg.dram.trp, cfg.dram.tcl, cfg.dram.trcd) == (16, 16, 16)
    # CDF structures.
    cdf = SimConfig.with_cdf().cdf
    assert cdf.cct_entries == 64 and cdf.cct_ways == 2
    assert cdf.mask_cache_entries * 8 == 4 * 1024                # 4KB
    assert cdf.uop_cache_entries * cdf.uops_per_trace * 8 == 18 * 1024  # 18KB
    assert cdf.fill_buffer_entries == 1024
    assert cdf.delayed_branch_queue_entries == 256
    assert cdf.critical_map_queue_entries == 256
    # Area overhead near the paper's 3.2%.
    overhead = EnergyModel(SimConfig.with_cdf()).cdf_area_overhead()
    assert 0.02 < overhead < 0.05
