"""Ablation (Sec. 3.3) — the rejected Non-Critical Uop Cache.

The paper considered giving the non-critical stream its own uop cache
(more fetch bandwidth, no redundant decode) and decided against it:
'non-critical instructions are generally less sensitive to fetch
bandwidth'. This bench implements the alternative and quantifies how
little it buys, validating the design decision.
"""

from conftest import BENCH_SCALE, save_table

from repro.config import SimConfig
from repro.harness import geomean, run_benchmark
from repro.harness.tables import percent, render_table

SUBSET = ("astar", "milc", "bzip", "nab", "mcf", "soplex")


def run_nc_cache_study(scale):
    out = {}
    for name in SUBSET:
        base = run_benchmark(name, "baseline", scale=scale)
        plain = run_benchmark(name, "cdf", scale=scale)
        boosted_cfg = SimConfig.with_cdf()
        boosted_cfg.cdf.non_critical_uop_cache = True
        boosted = run_benchmark(name, "cdf", scale=scale,
                                config=boosted_cfg)
        out[name] = (plain.speedup_over(base), boosted.speedup_over(base))
    return out


def test_ablation_nc_uop_cache(bench_once):
    rows = bench_once(run_nc_cache_study, BENCH_SCALE)
    table = render_table(
        "Ablation — Non-Critical Uop Cache (Sec. 3.3, rejected design)",
        ("benchmark", "CDF", "CDF + NC uop cache"),
        [(name, percent(plain), percent(boosted))
         for name, (plain, boosted) in rows.items()],
        footer=("GEOMEAN",
                percent(geomean(v[0] for v in rows.values())),
                percent(geomean(v[1] for v in rows.values()))))
    save_table("ablation_nc_uop_cache", table)

    plain_geo = geomean(v[0] for v in rows.values())
    boosted_geo = geomean(v[1] for v in rows.values())
    # The extra structure buys little: the paper's justification for
    # dropping it (allow a small win, forbid a material one).
    assert abs(boosted_geo - plain_geo) < 0.04
