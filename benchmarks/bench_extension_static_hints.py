"""Extension bench — compiler-assisted CDF (the paper's future work).

Measures how much of CDF's training ramp a profile-guided hint artifact
removes: on finite runs, hinted CDF engages from cycle 0 and must match
or beat hardware-trained CDF.
"""

from conftest import BENCH_SCALE, save_table

from repro.cdf import CDFPipeline, preload_hints, profile_chains
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import geomean, load_workload
from repro.harness.tables import percent, render_table

SUBSET = ("astar", "milc", "bzip", "nab")


def run_hint_study(scale):
    rows = {}
    for name in SUBSET:
        workload = load_workload(name, scale)
        trace = workload.trace()
        hints = profile_chains(workload.program, trace, profile_uops=9000)

        base_cfg = SimConfig.baseline()
        base_cfg.stats_warmup_uops = workload.warmup_uops()
        base = BaselinePipeline(trace, base_cfg).run()

        plain_cfg = SimConfig.with_cdf()
        plain_cfg.stats_warmup_uops = workload.warmup_uops()
        plain = CDFPipeline(trace, plain_cfg, workload.program).run()

        hinted_cfg = SimConfig.with_cdf()
        hinted_cfg.stats_warmup_uops = workload.warmup_uops()
        hinted_pipe = CDFPipeline(trace, hinted_cfg, workload.program)
        preload_hints(hinted_pipe, hints)
        hinted = hinted_pipe.run()

        rows[name] = (plain.speedup_over(base), hinted.speedup_over(base),
                      plain.counters["cdf_mode_cycles"],
                      hinted.counters["cdf_mode_cycles"])
    return rows


def test_extension_static_hints(bench_once):
    rows = bench_once(run_hint_study, BENCH_SCALE)
    table = render_table(
        "Extension — compiler-assisted CDF (paper Sec. 6 future work)",
        ("benchmark", "CDF (hw only)", "CDF + hints", "hw mode cyc",
         "hinted mode cyc"),
        [(name, percent(plain), percent(hinted), hw_cycles, hint_cycles)
         for name, (plain, hinted, hw_cycles, hint_cycles)
         in rows.items()])
    save_table("extension_static_hints", table)

    plain_geo = geomean(v[0] for v in rows.values())
    hinted_geo = geomean(v[1] for v in rows.values())
    # Hints never hurt, and extend CDF-mode residency.
    assert hinted_geo >= plain_geo - 0.01
    for name, (plain, hinted, hw_cycles, hint_cycles) in rows.items():
        assert hint_cycles >= hw_cycles * 0.95, name
