"""Ablation (Sec. 4.2) — marking hard-to-predict branches critical.

Paper: 'Not marking these branches critical eliminates the benefits of
CDF in these applications and reduces the geomean speedup to 3.8%.'
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import (
    ablation_critical_branches,
    format_ablation_branches,
    geomean,
)
from repro.workloads import BRANCH_SENSITIVE


def test_ablation_critical_branches(bench_once):
    data = bench_once(ablation_critical_branches, scale=BENCH_SCALE)
    save_table("ablation_critical_branches", format_ablation_branches(data))

    with_geo = data["geomean"]["with"]
    without_geo = data["geomean"]["without"]
    # Turning the feature off costs geomean speedup, but CDF stays > 1
    # (loads alone still help) — the 6.1% -> 3.8% structure.
    assert without_geo < with_geo - 0.005
    assert without_geo > 1.0

    # The loss concentrates in the branch-sensitive family.
    family_with = geomean(data["with"][n] for n in BRANCH_SENSITIVE)
    family_without = geomean(data["without"][n] for n in BRANCH_SENSITIVE)
    assert family_without < family_with - 0.01
