"""Fig. 13 — % IPC improvement of CDF and PRE over the baseline.

Paper headline: CDF +6.1% geomean vs PRE +2.6%. The shape checks assert
the reproduction's qualitative structure: CDF beats PRE overall, wins on
the branch-criticality family (astar/mcf/soplex/bzip) and the sparse-chain
benchmarks, while the dense-stencil family favours PRE and the neutral
family moves for neither.
"""

from conftest import BENCH_SCALE, save_table

from repro.harness import fig13_speedup, format_fig13, geomean
from repro.workloads import BRANCH_SENSITIVE, NEUTRAL, PRE_FAVOURABLE


def test_fig13_speedup(bench_once):
    data = bench_once(fig13_speedup, scale=BENCH_SCALE)
    save_table("fig13_speedup", format_fig13(data))

    cdf_geo = data["geomean"]["cdf"]
    pre_geo = data["geomean"]["pre"]
    # Headline band: CDF gains mid-single-digit percent, beating PRE.
    assert 1.02 < cdf_geo < 1.12, f"CDF geomean {cdf_geo:.3f} out of band"
    assert cdf_geo > pre_geo, "CDF must beat PRE overall (paper 6.1 vs 2.6)"
    assert pre_geo > 0.97, "PRE should not lose badly overall"

    # CDF wins clearly on the sparse-chain / branch-criticality families.
    cdf_branchy = geomean(data["cdf"][n] for n in BRANCH_SENSITIVE)
    pre_branchy = geomean(data["pre"][n] for n in BRANCH_SENSITIVE)
    assert cdf_branchy > 1.03
    assert cdf_branchy > pre_branchy

    # nab: initiation-only benefit — CDF positive, PRE ~nothing (Sec. 2.3).
    assert data["cdf"]["nab"] > 1.05
    assert data["pre"]["nab"] < 1.02

    # The dense-stencil family favours PRE; CDF stays ~neutral there.
    cdf_stencil = geomean(data["cdf"][n] for n in PRE_FAVOURABLE)
    pre_stencil = geomean(data["pre"][n] for n in PRE_FAVOURABLE)
    assert pre_stencil > cdf_stencil
    assert abs(cdf_stencil - 1.0) < 0.03

    # The neutral family moves for neither technique.
    cdf_neutral = geomean(data["cdf"][n] for n in NEUTRAL)
    assert abs(cdf_neutral - 1.0) < 0.04
