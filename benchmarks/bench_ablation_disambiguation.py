"""Ablation — memory dependence speculation (Sec. 3.5 context).

The paper's cores (like modern hardware) speculate loads past older
stores with unknown addresses, falling back to flush-on-violation; the
model's default 'oracle' policy captures that common case. This bench
quantifies what full conservatism (hold every load until all older store
addresses are known) would cost, and shows CDF keeps working — critical
loads jumping the queue never break memory ordering because violations
are detected at replay.
"""

from conftest import BENCH_SCALE, save_table

from repro.config import SimConfig
from repro.harness import geomean, run_benchmark
from repro.harness.tables import render_table

#: Store-carrying workloads.
SUBSET = ("libquantum", "lbm", "soplex", "bzip")


def run_disambiguation_study(scale):
    out = {}
    for name in SUBSET:
        row = {}
        for policy in ("oracle", "conservative"):
            for mode in ("baseline", "cdf"):
                config = (SimConfig.baseline() if mode == "baseline"
                          else SimConfig.with_cdf())
                config.core.memory_disambiguation = policy
                row[(policy, mode)] = run_benchmark(
                    name, mode, scale=scale, config=config)
        out[name] = row
    return out


def test_ablation_disambiguation(bench_once):
    data = bench_once(run_disambiguation_study, BENCH_SCALE)
    rows = []
    for name, row in data.items():
        oracle_base = row[("oracle", "baseline")]
        rows.append((
            name,
            f"{oracle_base.ipc:.3f}",
            f"{row[('conservative', 'baseline')].ipc / oracle_base.ipc:.3f}x",
            f"{row[('oracle', 'cdf')].speedup_over(oracle_base):.3f}x",
            f"{row[('conservative', 'cdf')].speedup_over(row[('conservative', 'baseline')]):.3f}x",
        ))
    save_table("ablation_disambiguation", render_table(
        "Ablation — oracle vs conservative memory disambiguation",
        ("benchmark", "base IPC", "conservative base", "CDF (oracle)",
         "CDF (conservative)"), rows))

    for name, row in data.items():
        oracle_base = row[("oracle", "baseline")]
        conservative_base = row[("conservative", "baseline")]
        # Conservatism never speeds the baseline up.
        assert conservative_base.ipc <= oracle_base.ipc * 1.01, name
        # CDF remains correct and profitable-or-neutral either way.
        cdf_conservative = row[("conservative", "cdf")]
        # Measured-region retire counts match up to warmup-snapshot
        # granularity (one retire group).
        assert abs(cdf_conservative.retired_uops
                   - oracle_base.retired_uops) <= 6
        assert cdf_conservative.speedup_over(conservative_base) > 0.97, name
